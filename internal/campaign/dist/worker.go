package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"time"

	"deepheal/internal/campaign"
	"deepheal/internal/faultinject"
)

// ErrWorkerDied is returned by RunWorker when the SiteWorkerDie fault fires:
// the worker abandons its lease and its in-flight result exactly as a
// killed process would, so in-process chaos tests exercise the same takeover
// path a real crash does. The deepheal worker verb maps it to a non-zero
// exit.
var ErrWorkerDied = errors.New("dist: worker died (injected)")

// WorkerOptions tunes one worker process.
type WorkerOptions struct {
	// ID names the worker; it becomes the shard file name. Empty derives
	// host-pid.
	ID string
	// LeaseTTL is how long a claim lives between renewals; a worker lost
	// for longer than this has its point stolen. Default 30s.
	LeaseTTL time.Duration
	// HeartbeatTTL is how long a liveness beacon stays fresh; a worker is
	// suspect after one TTL of silence and dead after three. Defaults to
	// LeaseTTL, so the two liveness signals age together.
	HeartbeatTTL time.Duration
	// Poll is the idle rescan interval while waiting for other workers'
	// leases to resolve. Default 100ms.
	Poll time.Duration
	// MaxAttempts is the fleet-wide crash budget per point: a point whose
	// lease has died this many times (across any workers) is quarantined
	// instead of stolen again. Default 3; negative disables quarantine.
	MaxAttempts int
	// NoSync disables per-record fsync on the shard — only for tests that
	// hammer a tmpfs; real shards must survive power loss.
	NoSync bool
}

// WorkerStats summarises one worker's participation.
type WorkerStats struct {
	Completed   int // points computed and recorded to this worker's shard
	CacheHits   int // points skipped because another shard already held the hash
	Stolen      int // expired leases taken over
	Failed      int // points whose Run returned an error (marked for the coordinator)
	Quarantined int // poison points this worker quarantined on acquisition
	WallSeconds float64
}

// defaultWorkerID derives a unique-enough worker name.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// workerBeacon rate-limits a worker's liveness publishing to a third of the
// heartbeat TTL, so the beacon piggybacks on the scan loop without turning
// every poll into a write.
type workerBeacon struct {
	dir  string
	ttl  time.Duration
	last time.Time
}

func (b *workerBeacon) publish(hb heartbeat, force bool) {
	now := time.Now()
	if !force && now.Sub(b.last) < b.ttl/3 {
		return
	}
	b.last = now
	hb.Written = now.UnixMilli()
	hb.Expires = now.Add(b.ttl).UnixMilli()
	writeHeartbeat(b.dir, hb)
}

// RunWorker leases and executes manifest points until the queue is drained
// (every point completed in some shard or marked failed) or ctx is
// cancelled. tasks must be the plan set the manifest was published from —
// workers match points to manifest entries by content hash, so a worker
// built from a different binary revision simply finds no matching hashes
// and computes nothing (never the wrong thing).
//
// Alongside the work itself the worker maintains a liveness beacon in
// heartbeats/: refreshed from the scan loop and from the lease-renewal
// ticker of a long-running point, finalised with Done=true on every clean
// exit. An injected death (ErrWorkerDied) deliberately writes no goodbye —
// the stale beacon is exactly what a real crash leaves behind.
func RunWorker(ctx context.Context, dir string, m *Manifest, tasks []campaign.Task, opts WorkerOptions) (stats WorkerStats, err error) {
	start := time.Now()
	if opts.ID == "" {
		opts.ID = defaultWorkerID()
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 30 * time.Second
	}
	if opts.HeartbeatTTL <= 0 {
		opts.HeartbeatTTL = opts.LeaseTTL
	}
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}

	snap := func(inflight string, done bool) heartbeat {
		return heartbeat{
			Worker:      opts.ID,
			Completed:   stats.Completed,
			CacheHits:   stats.CacheHits,
			Failed:      stats.Failed,
			Stolen:      stats.Stolen,
			Quarantined: stats.Quarantined,
			Inflight:    inflight,
			Done:        done,
		}
	}
	beacon := &workerBeacon{dir: dir, ttl: opts.HeartbeatTTL}
	defer func() {
		stats.WallSeconds = time.Since(start).Seconds()
		if errors.Is(err, ErrWorkerDied) {
			return // a crash writes no goodbye; the beacon goes stale instead
		}
		beacon.publish(snap("", true), true)
	}()

	points := make(map[string]campaign.Point, len(m.Points))
	for _, t := range tasks {
		for _, p := range t.Points {
			if p.Hash != "" {
				points[p.Hash] = p
			}
		}
	}

	shard, err := campaign.OpenJournalWith(dir, campaign.JournalOptions{
		Name: shardFile(opts.ID),
		Sync: !opts.NoSync,
	})
	if err != nil {
		return stats, fmt.Errorf("dist: worker %s: %w", opts.ID, err)
	}
	defer shard.Close()

	scan := newShardScanner(dir)
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		beacon.publish(snap("", false), false)
		if err := scan.rescan(); err != nil {
			return stats, fmt.Errorf("dist: worker %s: %w", opts.ID, err)
		}
		failed, err := failedHashes(dir)
		if err != nil {
			return stats, fmt.Errorf("dist: worker %s: %w", opts.ID, err)
		}

		progressed, remaining := false, 0
		for _, mp := range m.Points {
			if shard.Has(mp.Hash) {
				continue // completed by us
			}
			if scan.complete[mp.Hash] {
				metCacheHits.Inc()
				stats.CacheHits++
				continue // completed by another worker's shard
			}
			if failed[n16(mp.Hash)] {
				continue // handed back to the coordinator
			}
			remaining++
			claim, lerr := acquireLease(dir, mp.Hash, mp.Key, opts.ID, opts.LeaseTTL, opts.MaxAttempts)
			if lerr != nil {
				return stats, fmt.Errorf("dist: worker %s: lease %s: %w", opts.ID, mp.Key, lerr)
			}
			if claim.poisoned {
				cause := fmt.Sprintf("point killed its worker %d time(s); last held by %s", claim.attempts, claim.last.Worker)
				if merr := markQuarantined(dir, mp.Hash, mp.Key, claim.attempts, cause); merr != nil {
					return stats, fmt.Errorf("dist: worker %s: quarantine %s: %w", opts.ID, mp.Key, merr)
				}
				stats.Quarantined++
				progressed = true
				continue
			}
			if !claim.ok {
				continue // live claim elsewhere, or a transient lease race
			}
			if claim.stolen {
				metLeaseSteals.Inc()
				stats.Stolen++
			}
			metLeases.Inc()

			// Re-check under the lease: the previous holder may have
			// completed the point between our scan and the steal.
			if err := scan.rescan(); err == nil && scan.complete[mp.Hash] {
				releaseLease(dir, mp.Hash)
				metCacheHits.Inc()
				stats.CacheHits++
				continue
			}

			beacon.publish(snap(mp.Key, false), false)
			value, runErr := runLeased(ctx, dir, mp, points[mp.Hash], opts, claim.attempts, snap(mp.Key, false))
			if faultinject.Hit(faultinject.SiteWorkerDie, mp.Key) {
				// Simulated crash: no record, no release, no failure marker.
				// The lease expires and a survivor takes over.
				return stats, ErrWorkerDied
			}
			switch {
			case runErr == nil:
				if _, jerr := shard.Record(mp.Key, mp.Hash, value, 0); jerr != nil {
					return stats, fmt.Errorf("dist: worker %s: %w", opts.ID, jerr)
				}
				metPointsDone.Inc()
				stats.Completed++
			case errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded):
				releaseLease(dir, mp.Hash)
				return stats, runErr
			default:
				if merr := markFailed(dir, mp.Hash, mp.Key, opts.ID, claim.attempts, runErr); merr != nil {
					return stats, fmt.Errorf("dist: worker %s: %w", opts.ID, merr)
				}
				metPointsFailed.Inc()
				stats.Failed++
			}
			releaseLease(dir, mp.Hash)
			progressed = true
			beacon.publish(snap("", false), false)
		}

		if remaining == 0 {
			return stats, nil // drained
		}
		if !progressed {
			// Everything left is leased elsewhere: wait for completions,
			// failures or expiries.
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(opts.Poll):
			}
		}
	}
}

// runLeased executes one leased point, renewing the lease (and the worker's
// heartbeat, with the point marked in-flight) in the background so a long
// solve is neither stolen mid-compute nor mistaken for a dead worker, and
// converting panics into errors (a panicking point is marked failed, not a
// dead worker).
func runLeased(ctx context.Context, dir string, mp ManifestPoint, p campaign.Point, opts WorkerOptions, attempts int, hb heartbeat) (value any, err error) {
	if p.Run == nil {
		return nil, fmt.Errorf("dist: manifest point %s has no local plan (worker built from a different revision?)", mp.Key)
	}
	period := opts.LeaseTTL
	if opts.HeartbeatTTL < period {
		period = opts.HeartbeatTTL
	}
	stopRenew := make(chan struct{})
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		t := time.NewTicker(period / 3)
		defer t.Stop()
		for {
			select {
			case <-stopRenew:
				return
			case now := <-t.C:
				renewLease(dir, mp.Hash, mp.Key, opts.ID, opts.LeaseTTL, attempts)
				hb.Written = now.UnixMilli()
				hb.Expires = now.Add(opts.HeartbeatTTL).UnixMilli()
				writeHeartbeat(dir, hb)
			}
		}
	}()
	defer func() {
		close(stopRenew)
		<-renewDone
		if rec := recover(); rec != nil {
			err = fmt.Errorf("dist: point %s panicked: %v\n%s", mp.Key, rec, debug.Stack())
		}
	}()
	return p.Run(ctx)
}

// shardScanner incrementally tails every shard file in dir, accumulating
// the set of completed point hashes. Only complete, parseable lines with a
// hash count — a torn tail or an in-flight append is simply not yet
// complete. CRC verification is deferred to the merge: a corrupt record
// optimistically marked complete here is skipped by AbsorbFile and
// recomputed by the coordinator's final run, so correctness never depends
// on the scanner's leniency.
type shardScanner struct {
	dir      string
	offsets  map[string]int64 // shard path → bytes consumed (complete lines only)
	partial  map[string][]byte
	complete map[string]bool // point hash → completed in some shard
}

func newShardScanner(dir string) *shardScanner {
	return &shardScanner{
		dir:      dir,
		offsets:  make(map[string]int64),
		partial:  make(map[string][]byte),
		complete: make(map[string]bool),
	}
}

// rescan reads newly appended bytes from every shard.
func (s *shardScanner) rescan() error {
	paths, err := shardPaths(s.dir)
	if err != nil {
		return err
	}
	for _, path := range paths {
		if err := s.tail(path); err != nil {
			return err
		}
	}
	return nil
}

// tail consumes new complete lines from one shard file.
func (s *shardScanner) tail(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	if off := s.offsets[path]; off > 0 {
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return err
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	buf := append(s.partial[path], data...)
	consumed := 0
	for {
		nl := bytes.IndexByte(buf[consumed:], '\n')
		if nl < 0 {
			break
		}
		line := buf[consumed : consumed+nl]
		consumed += nl + 1
		var env struct {
			Hash string `json:"hash"`
		}
		if json.Unmarshal(line, &env) == nil && env.Hash != "" {
			s.complete[env.Hash] = true
		}
	}
	s.offsets[path] += int64(len(data))
	s.partial[path] = append([]byte(nil), buf[consumed:]...)
	return nil
}
