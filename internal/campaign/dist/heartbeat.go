package dist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// heartbeat is one worker's liveness beacon: an atomically renamed file
// under heartbeats/ carrying progress counters, renewed from the same loop
// that renews leases. Its purpose is to let a coordinator distinguish a
// slow fleet (live heartbeats, no completions yet) from a dead one (no
// heartbeats, no completions) — the distinction PR 8's fixed drain timeout
// could not make. Heartbeat files are never deleted: a worker's final
// heartbeat is its telemetry record (points completed, cache hits, last
// in-flight key), and a crashed worker's last beacon is the evidence the
// stall error names.
type heartbeat struct {
	Worker      string `json:"worker"`
	Completed   int    `json:"completed"`
	CacheHits   int    `json:"cache_hits,omitempty"`
	Failed      int    `json:"failed,omitempty"`
	Stolen      int    `json:"stolen,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	// Inflight is the key of the point currently computing, empty between
	// points and after the worker's final beacon.
	Inflight string `json:"inflight,omitempty"`
	// Done marks the worker's final beacon: it drained the queue (or was
	// cancelled) and exited cleanly, so its silence from now on is not a
	// death.
	Done    bool  `json:"done,omitempty"`
	Written int64 `json:"written_unix_ms"`
	Expires int64 `json:"expires_unix_ms"`
}

// Worker liveness classification, derived from a heartbeat's own expiry
// window so observers need no out-of-band TTL configuration.
const (
	workerLive    = "live"    // now <= Expires
	workerSuspect = "suspect" // expired less than 2 TTLs ago
	workerDead    = "dead"    // silent longer than that, and not Done
)

// classify buckets a heartbeat at time now. Done workers are out of the
// census entirely — an exited worker is neither alive nor a casualty.
func (hb heartbeat) classify(now int64) string {
	if now <= hb.Expires {
		return workerLive
	}
	ttl := hb.Expires - hb.Written
	if ttl <= 0 {
		ttl = int64(30 * time.Second / time.Millisecond)
	}
	if now <= hb.Expires+2*ttl {
		return workerSuspect
	}
	return workerDead
}

// heartbeatPath names worker's beacon file.
func heartbeatPath(dir, worker string) string {
	return filepath.Join(dir, heartbeatsDir, worker+".json")
}

// writeHeartbeat publishes hb atomically. Best-effort, like lease renewal:
// a beacon that fails to land costs detection latency, never correctness.
func writeHeartbeat(dir string, hb heartbeat) {
	data, err := json.Marshal(hb)
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Join(dir, heartbeatsDir), 0o755); err != nil {
		return
	}
	if writeAtomic(heartbeatPath(dir, hb.Worker), append(data, '\n')) == nil {
		metHeartbeatsWritten.Inc()
	}
}

// readHeartbeats loads every parseable beacon in dir, sorted by worker name
// for deterministic reporting. Corrupt or torn beacons are skipped — a
// heartbeat is advisory, and a worker whose beacon tore mid-write will
// rewrite it within a TTL anyway.
func readHeartbeats(dir string) ([]heartbeat, error) {
	entries, err := os.ReadDir(filepath.Join(dir, heartbeatsDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var hbs []heartbeat
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, heartbeatsDir, e.Name()))
		if rerr != nil {
			continue
		}
		var hb heartbeat
		if json.Unmarshal(data, &hb) != nil || hb.Worker == "" {
			continue
		}
		hbs = append(hbs, hb)
		metHeartbeatsObserved.Inc()
	}
	sort.Slice(hbs, func(i, j int) bool { return hbs[i].Worker < hbs[j].Worker })
	return hbs, nil
}

// censusWorkers tallies a heartbeat set at time now into live / suspect /
// dead counts plus the dead workers' names — the summary DrainState carries
// and the stall error prints. Done workers are excluded.
func censusWorkers(hbs []heartbeat, now int64) (live, suspect int, dead []string) {
	for _, hb := range hbs {
		if hb.Done {
			continue
		}
		switch hb.classify(now) {
		case workerLive:
			live++
		case workerSuspect:
			suspect++
		default:
			dead = append(dead, hb.Worker)
		}
	}
	return live, suspect, dead
}
