package dist

import (
	"context"
	"fmt"
	"time"

	"deepheal/internal/campaign"
)

// DrainState is a point-in-time view of queue progress.
type DrainState struct {
	Total     int // distributable points in the manifest
	Completed int // hashes present in some shard
	Failed    int // hashes with a failure marker (coordinator recomputes)
}

// Drained reports whether every manifest point is accounted for.
func (s DrainState) Drained() bool { return s.Completed+s.Failed >= s.Total }

// Progress inspects dir once and reports how much of the manifest is
// accounted for. Scanning is from scratch (no incremental state), which is
// what a freshly attached observer wants.
func Progress(dir string, m *Manifest) (DrainState, error) {
	scan := newShardScanner(dir)
	if err := scan.rescan(); err != nil {
		return DrainState{}, err
	}
	failed, err := failedHashes(dir)
	if err != nil {
		return DrainState{}, err
	}
	st := DrainState{Total: len(m.Points)}
	for _, mp := range m.Points {
		switch {
		case scan.complete[mp.Hash]:
			st.Completed++
		case failed[n16(mp.Hash)]:
			st.Failed++
		}
	}
	return st, nil
}

// WaitDrained polls dir until every manifest point is completed in some
// shard or marked failed, or ctx expires. onProgress, if non-nil, is called
// whenever the accounted-for count changes.
func WaitDrained(ctx context.Context, dir string, m *Manifest, poll time.Duration, onProgress func(DrainState)) error {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	scan := newShardScanner(dir)
	last := -1
	for {
		if err := scan.rescan(); err != nil {
			return fmt.Errorf("dist: drain: %w", err)
		}
		failed, err := failedHashes(dir)
		if err != nil {
			return fmt.Errorf("dist: drain: %w", err)
		}
		st := DrainState{Total: len(m.Points)}
		for _, mp := range m.Points {
			switch {
			case scan.complete[mp.Hash]:
				st.Completed++
			case failed[n16(mp.Hash)]:
				st.Failed++
			}
		}
		if done := st.Completed + st.Failed; done != last {
			last = done
			if onProgress != nil {
				onProgress(st)
			}
		}
		if st.Drained() {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: drain: %w", ctx.Err())
		case <-time.After(poll):
		}
	}
}

// MergeStats summarises a shard merge.
type MergeStats struct {
	Shards     int
	Absorbed   int
	Duplicates int
	Corrupted  int
	TornTails  int
}

// MergeShards absorbs every worker shard in dir into the campaign's
// canonical journal (journal.jsonl in the same directory), in sorted shard
// order so the merge is deterministic. Records already present — the
// coordinator may have run before, or two workers may have raced a steal —
// deduplicate by content hash; corrupt records and torn shard tails are
// skipped with the journal's usual tolerance, leaving those points to the
// final run. The merged journal is a plain campaign journal: the assembly
// pass and any later resume read it with no distributed machinery at all.
func MergeShards(dir string) (MergeStats, error) {
	j, err := campaign.OpenJournal(dir)
	if err != nil {
		return MergeStats{}, fmt.Errorf("dist: merge: %w", err)
	}
	defer j.Close()
	paths, err := shardPaths(dir)
	if err != nil {
		return MergeStats{}, fmt.Errorf("dist: merge: %w", err)
	}
	var st MergeStats
	for _, path := range paths {
		as, err := j.AbsorbFile(path)
		if err != nil {
			return st, fmt.Errorf("dist: merge: %w", err)
		}
		st.Shards++
		st.Absorbed += as.Absorbed
		st.Duplicates += as.Duplicates
		st.Corrupted += as.Corrupted
		if as.TornTail {
			st.TornTails++
		}
	}
	metMergeShards.Add(uint64(st.Shards))
	metMergeRecords.Add(uint64(st.Absorbed))
	metMergeCorrupt.Add(uint64(st.Corrupted + st.TornTails))
	return st, nil
}
