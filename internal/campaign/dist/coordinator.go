package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"deepheal/internal/campaign"
	"deepheal/internal/faultinject"
)

// ErrCoordinatorDied is returned by WaitDrained when the SiteCoordinatorDie
// fault fires: the coordinator abandons the drain mid-flight — no merge, no
// assembly — exactly as a killed process would, so crash-resume tests
// exercise the same recovery path a real coordinator loss does. The
// deepheal coordinate verb maps it to a dedicated exit code.
var ErrCoordinatorDied = errors.New("dist: coordinator died (injected)")

// ErrDrainStalled is wrapped by the error WaitDrained returns when the
// fleet has made no progress AND shown no live heartbeat for the stall
// window: every remaining point is waiting on workers that are gone.
var ErrDrainStalled = errors.New("dist: drain stalled")

// DrainState is a point-in-time view of queue progress and fleet health.
type DrainState struct {
	Total       int // distributable points in the manifest
	Completed   int // hashes present in some shard
	Failed      int // ordinary failure markers (coordinator recomputes)
	Quarantined int // poison-point markers (terminal; never re-executed)

	// Worker census from the heartbeat files, at scan time. Dead carries
	// the silent workers' names for the stall error and the progress line.
	Live    int
	Suspect int
	Dead    []string

	// RateHz is the completion rate observed since the drain (or the
	// Progress observer) attached — points per second.
	RateHz float64
}

// Drained reports whether every manifest point is accounted for.
func (s DrainState) Drained() bool {
	return s.Completed+s.Failed+s.Quarantined >= s.Total
}

// observe scans dir once (using scan for incremental shard tails) and fills
// a DrainState against manifest m.
func observe(dir string, m *Manifest, scan *shardScanner) (DrainState, error) {
	if err := scan.rescan(); err != nil {
		return DrainState{}, err
	}
	fails, err := readFailures(dir)
	if err != nil {
		return DrainState{}, err
	}
	st := DrainState{Total: len(m.Points)}
	for _, mp := range m.Points {
		switch f, failed := fails[n16(mp.Hash)]; {
		case scan.complete[mp.Hash]:
			st.Completed++
		case failed && f.Quarantined:
			st.Quarantined++
		case failed:
			st.Failed++
		}
	}
	hbs, err := readHeartbeats(dir)
	if err != nil {
		return DrainState{}, err
	}
	st.Live, st.Suspect, st.Dead = censusWorkers(hbs, time.Now().UnixMilli())
	metWorkersLive.Set(float64(st.Live))
	metWorkersSuspect.Set(float64(st.Suspect))
	metWorkersDead.Set(float64(len(st.Dead)))
	return st, nil
}

// Progress inspects dir once and reports how much of the manifest is
// accounted for plus the current worker census. Scanning is from scratch
// (no incremental state), which is what a freshly attached observer wants.
func Progress(dir string, m *Manifest) (DrainState, error) {
	return observe(dir, m, newShardScanner(dir))
}

// DrainOptions tunes WaitDrained.
type DrainOptions struct {
	// Poll is the rescan interval. Default 100ms.
	Poll time.Duration
	// StallWindow is how long the drain tolerates zero completions AND zero
	// live heartbeats before giving up with ErrDrainStalled. This replaces
	// a fixed whole-drain timeout: a slow fleet that is demonstrably alive
	// can take as long as it needs, while a dead one is reported within one
	// window. Default 1m; negative disables stall detection.
	StallWindow time.Duration
	// MaxAttempts is the fleet-wide crash budget per point, applied by the
	// coordinator's own quarantine sweep so poison points are caught even
	// when no worker survives to steal them. Default 3; negative disables.
	MaxAttempts int
	// OnProgress, if non-nil, is called whenever the accounted-for count
	// changes.
	OnProgress func(DrainState)
}

// WaitDrained polls dir until every manifest point is completed in some
// shard or marked failed/quarantined, the fleet stalls, or ctx expires.
//
// Liveness is judged from two signals: completions (the accounted-for count
// moved) and heartbeats (some worker's beacon is unexpired). Either one
// resets the stall clock, so a fleet grinding through a slow point is never
// declared dead while it demonstrably breathes; only silence on both fronts
// for a full StallWindow stalls the drain, with the error naming the
// workers whose beacons went dark.
func WaitDrained(ctx context.Context, dir string, m *Manifest, opts DrainOptions) error {
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.StallWindow == 0 {
		opts.StallWindow = time.Minute
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = 3
	}
	scan := newShardScanner(dir)
	start := time.Now()
	var startDone int
	last := -1
	lastActivity := start
	for {
		st, err := observe(dir, m, scan)
		if err != nil {
			return fmt.Errorf("dist: drain: %w", err)
		}
		now := time.Now()
		done := st.Completed + st.Failed + st.Quarantined
		if last < 0 {
			startDone = done
		}
		if elapsed := now.Sub(start).Seconds(); elapsed > 0 {
			st.RateHz = float64(done-startDone) / elapsed
		}
		if done != last {
			last = done
			lastActivity = now
			if opts.OnProgress != nil {
				opts.OnProgress(st)
			}
			if faultinject.Hit(faultinject.SiteCoordinatorDie, fmt.Sprintf("drain:%d", done)) {
				// Simulated crash: no merge, no assembly. The published
				// manifest, shards and markers stay behind for -resume.
				return ErrCoordinatorDied
			}
		}
		if st.Drained() {
			return nil
		}
		if st.Live > 0 {
			lastActivity = now
		}
		if swept, serr := sweepPoison(dir, m, scan, opts.MaxAttempts); serr != nil {
			return fmt.Errorf("dist: drain: %w", serr)
		} else if swept > 0 {
			continue // recount immediately; the sweep accounted for points
		}
		if opts.StallWindow > 0 && now.Sub(lastActivity) > opts.StallWindow {
			return stallError(st, opts.StallWindow)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: drain: %w", ctx.Err())
		case <-time.After(opts.Poll):
		}
	}
}

// stallError builds the actionable stall report: what is stuck, for how
// long, and which workers went silent.
func stallError(st DrainState, window time.Duration) error {
	remaining := st.Total - st.Completed - st.Failed - st.Quarantined
	who := "no worker heartbeats on record"
	if len(st.Dead) > 0 {
		who = "dead workers: " + strings.Join(st.Dead, ", ")
	} else if st.Suspect > 0 {
		who = fmt.Sprintf("%d worker(s) suspect (heartbeat expired)", st.Suspect)
	}
	return fmt.Errorf("%w: %d/%d points unaccounted after %v without completions or live heartbeats (%s)",
		ErrDrainStalled, remaining, st.Total, window, who)
}

// sweepPoison is the coordinator-side half of poison-point detection: for
// every unaccounted point whose lease expired with the attempt budget
// exhausted, write the quarantine marker. Workers do the same when they try
// to steal such a lease, but the sweep is what catches a poison point after
// it has killed the *entire* fleet — with no worker left to steal, only the
// coordinator can account for it and let the drain finish.
func sweepPoison(dir string, m *Manifest, scan *shardScanner, maxAttempts int) (int, error) {
	if maxAttempts <= 0 {
		return 0, nil
	}
	fails, err := readFailures(dir)
	if err != nil {
		return 0, err
	}
	swept := 0
	nowMs := time.Now().UnixMilli()
	for _, mp := range m.Points {
		if scan.complete[mp.Hash] {
			continue
		}
		if _, failed := fails[n16(mp.Hash)]; failed {
			continue
		}
		held, valid, _, rerr := readLease(leasePath(dir, mp.Hash))
		if rerr != nil || !valid || nowMs < held.Expires || held.Attempts < maxAttempts {
			continue
		}
		cause := fmt.Sprintf("point killed its worker %d time(s); last held by %s", held.Attempts, held.Worker)
		if merr := markQuarantined(dir, mp.Hash, mp.Key, held.Attempts, cause); merr != nil {
			return swept, merr
		}
		swept++
	}
	return swept, nil
}

// planPoints lists the distributable points of tasks in declaration order —
// the exchange set Publish writes and Resume verifies against.
func planPoints(tasks []campaign.Task) []ManifestPoint {
	var pts []ManifestPoint
	seq := 0
	for _, t := range tasks {
		for _, p := range t.Points {
			if p.Hash == "" || p.New == nil {
				continue
			}
			pts = append(pts, ManifestPoint{Seq: seq, Task: t.ID, Key: p.Key, Hash: p.Hash})
			seq++
		}
	}
	return pts
}

// Resume reattaches a coordinator to a campaign directory whose manifest was
// published by an earlier (crashed) coordinator. The manifest is reloaded —
// not republished — and verified point-for-point against the freshly
// planned tasks, so a binary revision that would compute different points
// is rejected instead of silently mixing two plans in one directory. The
// returned state is the progress already banked on disk: those points will
// be absorbed from shards, never re-executed, and their count feeds the
// deepheal_dist_resume_restored_total counter that crash-resume tests use
// to assert zero re-execution.
func Resume(dir string, experiments []string, tasks []campaign.Task) (*Manifest, DrainState, error) {
	m, err := LoadManifest(dir)
	if err != nil {
		return nil, DrainState{}, fmt.Errorf("dist: resume: %w", err)
	}
	if len(m.Experiments) != len(experiments) {
		return nil, DrainState{}, fmt.Errorf("dist: resume: manifest covers %d experiment(s), this invocation plans %d — resume must rerun the original selection", len(m.Experiments), len(experiments))
	}
	for i, id := range experiments {
		if m.Experiments[i] != id {
			return nil, DrainState{}, fmt.Errorf("dist: resume: manifest experiment %q != planned %q — resume must rerun the original selection", m.Experiments[i], id)
		}
	}
	fresh := planPoints(tasks)
	if len(fresh) != len(m.Points) {
		return nil, DrainState{}, fmt.Errorf("dist: resume: manifest lists %d points, this build plans %d — different revision?", len(m.Points), len(fresh))
	}
	for i, mp := range m.Points {
		if fresh[i].Hash != mp.Hash || fresh[i].Key != mp.Key {
			return nil, DrainState{}, fmt.Errorf("dist: resume: manifest point %d is %s (%s), this build plans %s (%s) — different revision?",
				i, mp.Key, n16(mp.Hash), fresh[i].Key, n16(fresh[i].Hash))
		}
	}
	if err := ensureLayout(dir); err != nil {
		return nil, DrainState{}, fmt.Errorf("dist: resume: %w", err)
	}
	st, err := Progress(dir, m)
	if err != nil {
		return nil, DrainState{}, fmt.Errorf("dist: resume: %w", err)
	}
	metResumeRestored.Add(uint64(st.Completed))
	return m, st, nil
}

// QuarantinedFailures extracts the poison-point markers in dir as a map
// from full point hash (expanded through the manifest) to the recorded
// cause — the shape campaign.Options.Quarantined consumes, so the final
// assembly records these points as quarantined outcomes instead of
// executing them again.
func QuarantinedFailures(dir string, m *Manifest) (map[string]string, error) {
	fails, err := readFailures(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for _, mp := range m.Points {
		if f, ok := fails[n16(mp.Hash)]; ok && f.Quarantined {
			out[mp.Hash] = f.Err
		}
	}
	return out, nil
}

// MergeStats summarises a shard merge.
type MergeStats struct {
	Shards     int
	Absorbed   int
	Duplicates int
	Corrupted  int
	TornTails  int
}

// MergeShards absorbs every worker shard in dir into the campaign's
// canonical journal (journal.jsonl in the same directory), in sorted shard
// order so the merge is deterministic. Records already present — the
// coordinator may have run before, or two workers may have raced a steal —
// deduplicate by content hash; corrupt records and torn shard tails are
// skipped with the journal's usual tolerance, leaving those points to the
// final run. The merged journal is a plain campaign journal: the assembly
// pass and any later resume read it with no distributed machinery at all.
func MergeShards(dir string) (MergeStats, error) {
	j, err := campaign.OpenJournal(dir)
	if err != nil {
		return MergeStats{}, fmt.Errorf("dist: merge: %w", err)
	}
	defer j.Close()
	paths, err := shardPaths(dir)
	if err != nil {
		return MergeStats{}, fmt.Errorf("dist: merge: %w", err)
	}
	var st MergeStats
	for _, path := range paths {
		as, err := j.AbsorbFile(path)
		if err != nil {
			return st, fmt.Errorf("dist: merge: %w", err)
		}
		st.Shards++
		st.Absorbed += as.Absorbed
		st.Duplicates += as.Duplicates
		st.Corrupted += as.Corrupted
		if as.TornTail {
			st.TornTails++
		}
	}
	metMergeShards.Add(uint64(st.Shards))
	metMergeRecords.Add(uint64(st.Absorbed))
	metMergeCorrupt.Add(uint64(st.Corrupted + st.TornTails))
	return st, nil
}
