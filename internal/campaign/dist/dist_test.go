package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deepheal/internal/campaign"
	"deepheal/internal/faultinject"
)

// testTasks builds a two-task campaign with deterministic float results and
// one cross-task duplicate hash (t2/shared repeats t1/p1's inputs), the
// shape the cross-shard result cache must exploit. runs counts actual
// Run invocations across every worker in the process.
func testTasks(runs *atomic.Int64, delay time.Duration) []campaign.Task {
	point := func(task string, i int, salt string) campaign.Point {
		key := fmt.Sprintf("%s/p%d", task, i)
		return campaign.NewPoint(key, campaign.Hash("dist-test", salt, i),
			func(ctx context.Context) (*float64, error) {
				runs.Add(1)
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				v := float64(i)*1.25 + float64(len(salt))
				return &v, nil
			})
	}
	t1 := campaign.Task{ID: "t1"}
	for i := 0; i < 4; i++ {
		t1.Points = append(t1.Points, point("t1", i, "a"))
	}
	t2 := campaign.Task{ID: "t2"}
	for i := 0; i < 3; i++ {
		t2.Points = append(t2.Points, point("t2", i, "b"))
	}
	// Duplicate content hash across tasks: same inputs as t1/p1, distinct key.
	shared := point("t1", 1, "a")
	shared.Key = "t2/shared"
	t2.Points = append(t2.Points, shared)
	t2.Assemble = assembleSum
	t1.Assemble = assembleSum
	return []campaign.Task{t1, t2}
}

func assembleSum(results []any) (any, error) {
	sum := 0.0
	for _, r := range results {
		sum += *r.(*float64)
	}
	return sum, nil
}

// runSerial executes tasks on the plain single-process engine.
func runSerial(t *testing.T, tasks []campaign.Task) []campaign.Outcome {
	t.Helper()
	outcomes, err := campaign.Run(context.Background(), tasks, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return outcomes
}

// runDistributed publishes tasks into dir, runs nWorkers in-process workers
// to drain the queue, merges the shards and assembles over the merged
// journal — the full coordinator sequence.
func runDistributed(t *testing.T, dir string, tasks []campaign.Task, nWorkers int, ttl time.Duration) ([]campaign.Outcome, MergeStats) {
	t.Helper()
	m, err := Publish(dir, []string{"t1", "t2"}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[w] = RunWorker(context.Background(), dir, m, tasks, WorkerOptions{
				ID:       fmt.Sprintf("w%d", w),
				LeaseTTL: ttl,
				Poll:     5 * time.Millisecond,
				NoSync:   true,
			})
		}()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := WaitDrained(drainCtx, dir, m, DrainOptions{Poll: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil && err != ErrWorkerDied {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, err := campaign.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	outcomes, err := campaign.Run(context.Background(), tasks, campaign.Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	return outcomes, st
}

// assertSameValues compares assembled outcome values.
func assertSameValues(t *testing.T, serial, dist []campaign.Outcome) {
	t.Helper()
	if len(serial) != len(dist) {
		t.Fatalf("outcome count %d != %d", len(dist), len(serial))
	}
	for i := range serial {
		if fmt.Sprint(dist[i].Value) != fmt.Sprint(serial[i].Value) {
			t.Errorf("task %s: distributed %v != serial %v", serial[i].Task, dist[i].Value, serial[i].Value)
		}
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	var serialRuns, distRuns atomic.Int64
	serial := runSerial(t, testTasks(&serialRuns, 0))

	dir := t.TempDir()
	dist, st := runDistributed(t, dir, testTasks(&distRuns, 0), 2, time.Second)
	assertSameValues(t, serial, dist)

	// 7 distinct hashes (t2/shared dedups against t1/p1) across 8 points.
	if st.Absorbed != 7 {
		t.Errorf("merged %d records, want 7 (one per distinct hash)", st.Absorbed)
	}
	if st.Shards != 2 {
		t.Errorf("merged %d shards, want 2", st.Shards)
	}
	// The assembly pass must restore everything from the merged journal.
	for _, o := range dist {
		for _, p := range o.Points {
			if p.Source != "journal" {
				t.Errorf("point %s source %q after merge, want journal", p.Key, p.Source)
			}
		}
	}
	// Workers computed each distinct hash at most once per worker; the
	// cross-shard cache makes the total far below points×workers. The exact
	// split is timing-dependent, but the dedup'd hash must not run twice.
	if got := distRuns.Load(); got < 7 || got > 8 {
		t.Errorf("distributed run invocations = %d, want 7-8 (cache-deduplicated)", got)
	}
}

func TestWorkerDeathLeaseStealAndIdenticalOutput(t *testing.T) {
	var serialRuns, distRuns atomic.Int64
	serial := runSerial(t, testTasks(&serialRuns, 0))

	// The third SiteWorkerDie probe kills exactly one worker (whichever
	// completes the third leased point first); the survivor must steal the
	// abandoned lease after TTL and finish the queue alone.
	inj, err := faultinject.New(11, map[faultinject.Site]faultinject.Schedule{
		faultinject.SiteWorkerDie: {Occurrences: []uint64{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(inj)
	defer faultinject.Disable()

	dir := t.TempDir()
	dist, _ := runDistributed(t, dir, testTasks(&distRuns, 10*time.Millisecond), 2, 300*time.Millisecond)
	assertSameValues(t, serial, dist)
	if faultinject.Fired(faultinject.SiteWorkerDie) != 1 {
		t.Fatalf("worker-die fired %d times, want 1", faultinject.Fired(faultinject.SiteWorkerDie))
	}
}

func TestMergeSkipsTornShardTail(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	tasks := testTasks(&runs, 0)
	m, err := Publish(dir, []string{"t1", "t2"}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	// One worker drains the whole queue...
	if _, err := RunWorker(context.Background(), dir, m, tasks, WorkerOptions{
		ID: "w0", LeaseTTL: time.Second, Poll: time.Millisecond, NoSync: true,
	}); err != nil {
		t.Fatal(err)
	}
	// ...then its shard is torn mid-append, as a kill -9 during the final
	// record would leave it.
	shardPath := filepath.Join(dir, shardsDir, "w0.jsonl")
	data, err := os.ReadFile(shardPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shardPath, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := MergeShards(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTails != 1 {
		t.Errorf("torn tails = %d, want 1", st.TornTails)
	}
	if st.Absorbed != 6 {
		t.Errorf("absorbed %d records, want 6 (torn one skipped)", st.Absorbed)
	}

	// The final run recomputes exactly the torn point and matches serial.
	j, err := campaign.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	runs.Store(0)
	outcomes, err := campaign.Run(context.Background(), tasks, campaign.Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("final run recomputed %d points, want exactly the torn one", runs.Load())
	}
	var serialRuns atomic.Int64
	assertSameValues(t, runSerial(t, testTasks(&serialRuns, 0)), outcomes)
}

func TestFailedPointHandedBackToCoordinator(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	tasks := testTasks(&runs, 0)
	// Poison one point on the worker side only: the worker marks it failed
	// and drains; the coordinator's final run computes it cleanly.
	poisoned := tasks[0].Points[2]
	origRun := poisoned.Run
	fail := true
	tasks[0].Points[2].Run = func(ctx context.Context) (any, error) {
		if fail {
			return nil, fmt.Errorf("injected worker-side failure")
		}
		return origRun(ctx)
	}
	m, err := Publish(dir, []string{"t1", "t2"}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunWorker(context.Background(), dir, m, tasks, WorkerOptions{
		ID: "w0", LeaseTTL: time.Second, Poll: time.Millisecond, NoSync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 {
		t.Fatalf("worker failed %d points, want 1", stats.Failed)
	}
	if st, err := Progress(dir, m); err != nil || !st.Drained() {
		t.Fatalf("queue not drained after failure marker: %+v err=%v", st, err)
	}
	if _, err := MergeShards(dir); err != nil {
		t.Fatal(err)
	}
	j, err := campaign.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fail = false
	outcomes, err := campaign.Run(context.Background(), tasks, campaign.Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	var nRun, nJournal int
	for _, o := range outcomes {
		for _, p := range o.Points {
			switch p.Source {
			case "run":
				nRun++
			case "journal":
				nJournal++
			}
		}
	}
	if nRun != 1 {
		t.Errorf("coordinator computed %d points, want exactly the failed one", nRun)
	}
	if nJournal != 7 {
		t.Errorf("coordinator restored %d points, want 7", nJournal)
	}
}

func TestManifestRoundTripAndWait(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	tasks := testTasks(&runs, 0)

	// WaitManifest blocks until Publish lands.
	done := make(chan *Manifest, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m, err := WaitManifest(ctx, dir, time.Millisecond)
		if err != nil {
			t.Error(err)
		}
		done <- m
	}()
	time.Sleep(20 * time.Millisecond)
	pub, err := Publish(dir, []string{"t1", "t2"}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	got := <-done
	if got == nil || len(got.Points) != len(pub.Points) {
		t.Fatalf("waited manifest %+v != published %+v", got, pub)
	}
	if len(pub.Points) != 8 {
		t.Fatalf("manifest has %d points, want 8", len(pub.Points))
	}
	for i, p := range pub.Points {
		if p.Seq != i || p.Hash == "" || p.Key == "" {
			t.Errorf("manifest point %d malformed: %+v", i, p)
		}
	}

	// An unknown version is refused, not misread.
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(data), `"version": 1`, `"version": 99`, 1)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Error("future manifest version accepted")
	}
}

func TestLeaseExpiryIsStolen(t *testing.T) {
	dir := t.TempDir()
	for _, sub := range []string{leasesDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	hash := campaign.Hash("lease-test")
	c, err := acquireLease(dir, hash, "k", "w0", 50*time.Millisecond, 0)
	if err != nil || !c.ok || c.stolen || c.attempts != 1 {
		t.Fatalf("fresh acquire: %+v err=%v", c, err)
	}
	// A live lease is respected.
	c, err = acquireLease(dir, hash, "k", "w1", 50*time.Millisecond, 0)
	if err != nil || c.ok {
		t.Fatalf("live lease stolen: %+v err=%v", c, err)
	}
	time.Sleep(70 * time.Millisecond)
	c, err = acquireLease(dir, hash, "k", "w1", time.Second, 0)
	if err != nil || !c.ok || !c.stolen || c.attempts != 2 {
		t.Fatalf("expired lease not stolen with attempt carried: %+v err=%v", c, err)
	}
	releaseLease(dir, hash)
	c, err = acquireLease(dir, hash, "k", "w2", time.Second, 0)
	if err != nil || !c.ok || c.stolen || c.attempts != 1 {
		t.Fatalf("released lease not reacquirable fresh: %+v err=%v", c, err)
	}
}

func TestLeaseAttemptBudgetPoisons(t *testing.T) {
	dir := t.TempDir()
	if err := ensureLayout(dir); err != nil {
		t.Fatal(err)
	}
	hash := campaign.Hash("poison-lease-test")
	// Two crashes: acquire then let expire, steal then let expire.
	if c, err := acquireLease(dir, hash, "k", "w0", 10*time.Millisecond, 2); err != nil || !c.ok {
		t.Fatalf("fresh acquire: %+v err=%v", c, err)
	}
	time.Sleep(20 * time.Millisecond)
	if c, err := acquireLease(dir, hash, "k", "w1", 10*time.Millisecond, 2); err != nil || !c.ok || c.attempts != 2 {
		t.Fatalf("first steal: %+v err=%v", c, err)
	}
	time.Sleep(20 * time.Millisecond)
	// Attempt budget exhausted: the third worker must see poison, not steal.
	c, err := acquireLease(dir, hash, "k", "w2", time.Second, 2)
	if err != nil || c.ok || !c.poisoned {
		t.Fatalf("exhausted lease not reported poisoned: %+v err=%v", c, err)
	}
	if c.attempts != 2 || c.last.Worker != "w1" {
		t.Errorf("poison claim lost history: %+v", c)
	}
	// With no budget (<=0) the same lease is still stealable forever.
	if c, err := acquireLease(dir, hash, "k", "w3", time.Second, 0); err != nil || !c.ok || !c.stolen || c.attempts != 3 {
		t.Fatalf("unbudgeted steal of exhausted lease: %+v err=%v", c, err)
	}
}

func TestCorruptLeaseIsStealable(t *testing.T) {
	dir := t.TempDir()
	if err := ensureLayout(dir); err != nil {
		t.Fatal(err)
	}
	old, _ := json.Marshal(lease{Worker: "ancient", Key: "k", Expires: 12, Attempts: 1})
	for name, contents := range map[string][]byte{
		"empty file":     {},
		"truncated JSON": []byte(`{"worker":"w0","key":"k","expi`),
		"binary garbage": {0xde, 0xad, 0xbe, 0xef, '\n'},
		"ancient valid":  append(old, '\n'),
	} {
		t.Run(name, func(t *testing.T) {
			hash := campaign.Hash("corrupt-lease", name)
			if err := os.WriteFile(leasePath(dir, hash), contents, 0o644); err != nil {
				t.Fatal(err)
			}
			// Progress/drain must not choke on the lease either: readLease is
			// the only parser, and it must hand back "stealable", not an error.
			held, valid, absent, err := readLease(leasePath(dir, hash))
			if err != nil || absent {
				t.Fatalf("readLease: held=%+v valid=%v absent=%v err=%v", held, valid, absent, err)
			}
			if name == "ancient valid" && !valid {
				t.Fatal("ancient valid lease parsed as corrupt")
			}
			c, err := acquireLease(dir, hash, "k", "thief", time.Second, 3)
			if err != nil || !c.ok || !c.stolen {
				t.Fatalf("%s not stolen: %+v err=%v", name, c, err)
			}
			// A corrupt lease has no attempt history; a valid expired one does.
			want := 2
			if name != "ancient valid" {
				want = 1
			}
			if c.attempts != want {
				t.Errorf("%s: attempts = %d, want %d", name, c.attempts, want)
			}
		})
	}
}
