package campaign

import "sync"

// memo deduplicates point executions by content hash within one campaign
// run: the first caller for a hash computes ("the leader"), concurrent
// callers with the same hash block until the leader finishes and share its
// result. Values stored in the memo are treated as immutable by contract
// (see Task.Assemble).
type memo struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

type memoEntry struct {
	done  chan struct{}
	value any
	err   error
}

func newMemo() *memo { return &memo{m: make(map[string]*memoEntry)} }

// do returns the memoised value for hash, computing it via fn exactly once
// per campaign. fresh reports whether this call was the leader.
func (c *memo) do(hash string, fn func() (any, error)) (value any, err error, fresh bool) {
	c.mu.Lock()
	if e, ok := c.m[hash]; ok {
		c.mu.Unlock()
		<-e.done
		return e.value, e.err, false
	}
	e := &memoEntry{done: make(chan struct{})}
	c.m[hash] = e
	c.mu.Unlock()

	e.value, e.err = fn()
	close(e.done)
	return e.value, e.err, true
}

// seed installs an already-known value (e.g. restored from the journal) so
// later points with the same hash skip both the journal and the compute.
// A hash that is already present keeps its first value.
func (c *memo) seed(hash string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[hash]; ok {
		return
	}
	e := &memoEntry{done: make(chan struct{}), value: value}
	close(e.done)
	c.m[hash] = e
}
