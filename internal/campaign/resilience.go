package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"deepheal/internal/faultinject"
)

// RetryPolicy bounds per-point retries. A point whose attempt fails with an
// ordinary error (not a panic, not campaign cancellation) is retried up to
// MaxAttempts total attempts, sleeping BaseDelay<<(attempt-1) capped at
// MaxDelay between attempts. The zero policy disables retries.
type RetryPolicy struct {
	MaxAttempts int
	BaseDelay   time.Duration
	MaxDelay    time.Duration
}

// backoff returns the sleep before the attempt following attempt (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

// ErrQuarantined marks a point that failed for its own reasons — a panic in
// its Run, or an error that survived every retry — while the campaign was
// still alive. Quarantined points are excluded from their task's assembly
// but do not stop the campaign: every other task still runs, completes and
// is delivered. Detect with errors.Is on a point, task or campaign error.
var ErrQuarantined = errors.New("campaign: point quarantined")

// quarantineError wraps a point failure so that errors.Is(err,
// ErrQuarantined) holds while the cause chain stays inspectable.
type quarantineError struct{ cause error }

func (e *quarantineError) Error() string { return "quarantined: " + e.cause.Error() }

func (e *quarantineError) Is(target error) bool { return target == ErrQuarantined }

func (e *quarantineError) Unwrap() error { return e.cause }

// PanicError is the error a recovered point panic surfaces as. The campaign
// engine converts panics inside Point.Run into quarantined point failures so
// one buggy experiment cannot take down a long campaign.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string { return fmt.Sprintf("point panicked: %v", e.Value) }

// QuarantinedPoints collects the stats of every quarantined point across the
// outcomes, in declaration order — the list the CLI reports and maps to its
// distinct exit code.
func QuarantinedPoints(outcomes []Outcome) []PointStat {
	var qs []PointStat
	for _, o := range outcomes {
		for _, p := range o.Points {
			if p.Quarantined {
				qs = append(qs, p)
			}
		}
	}
	return qs
}

// runPoint executes one point with the configured deadline and retry policy
// and classifies the failure: campaign cancellation passes through
// untouched, panics quarantine immediately, and ordinary errors quarantine
// once the retry budget is exhausted. It returns the number of attempts
// made.
func (r *run) runPoint(p Point) (any, int, error) {
	max := r.opts.Retry.MaxAttempts
	if max < 1 {
		max = 1
	}
	var lastErr error
	for attempt := 1; attempt <= max; attempt++ {
		if err := r.ctx.Err(); err != nil {
			return nil, attempt - 1, err
		}
		v, err := r.attempt(p, attempt)
		if err == nil {
			return v, attempt, nil
		}
		lastErr = err
		var pe *PanicError
		if errors.As(err, &pe) {
			// A panic is a bug, not transience — retrying it would just
			// crash the same way with less evidence.
			return nil, attempt, &quarantineError{cause: err}
		}
		if r.ctx.Err() != nil {
			// The campaign is being cancelled: the point did not fail, the
			// run did. Not a quarantine.
			return nil, attempt, r.ctx.Err()
		}
		if attempt < max {
			metPointRetries.Inc()
			if !sleepCtx(r.ctx, r.opts.Retry.backoff(attempt)) {
				return nil, attempt, r.ctx.Err()
			}
		}
	}
	if max > 1 {
		lastErr = fmt.Errorf("after %d attempts: %w", max, lastErr)
	}
	return nil, max, &quarantineError{cause: lastErr}
}

// attempt runs one attempt of a point under the per-point deadline,
// converting panics into *PanicError. The fault-injection probes live here:
// keys carry the attempt index so a keyed injected fault can clear on retry
// while staying deterministic.
func (r *run) attempt(p Point, attempt int) (v any, err error) {
	ctx := r.ctx
	if r.opts.PointTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.opts.PointTimeout)
		defer cancel()
	}
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	if faultinject.Enabled() {
		akey := fmt.Sprintf("%s#%d", p.Key, attempt)
		if d := faultinject.StallDelay(faultinject.SitePointStall, akey); d > 0 {
			if !sleepCtx(ctx, d) {
				return nil, ctx.Err()
			}
		}
		if faultinject.Hit(faultinject.SitePointCancel, akey) {
			cctx, cancel := context.WithCancel(ctx)
			cancel()
			ctx = cctx
		}
		if faultinject.Hit(faultinject.SiteWorkerPanic, akey) {
			panic(fmt.Sprintf("injected worker panic at %s", akey))
		}
		if ferr := faultinject.ErrorAt(faultinject.SitePointError, akey); ferr != nil {
			return nil, ferr
		}
	}
	return p.Run(ctx)
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports whether
// the full sleep elapsed. A non-positive d returns true immediately.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// inflightPoint is one point currently executing, tracked for the stall
// watchdog.
type inflightPoint struct {
	task, key string
	start     time.Time
	flagged   bool
}

// watchdog periodically sweeps the in-flight points and flags any running
// longer than StallTimeout — once per point — via the stall metric and the
// OnStall callback. It never kills work: a stalled point may be a long solve,
// and the per-point deadline is the enforcement mechanism.
type watchdog struct {
	stall   time.Duration
	onStall func(task, key string, running time.Duration)

	mu       sync.Mutex
	inflight map[*inflightPoint]struct{}
	stop     chan struct{}
	done     chan struct{}
}

func newWatchdog(stall time.Duration, onStall func(task, key string, running time.Duration)) *watchdog {
	w := &watchdog{
		stall:    stall,
		onStall:  onStall,
		inflight: make(map[*inflightPoint]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *watchdog) track(task, key string) *inflightPoint {
	p := &inflightPoint{task: task, key: key, start: time.Now()}
	w.mu.Lock()
	w.inflight[p] = struct{}{}
	w.mu.Unlock()
	return p
}

func (w *watchdog) untrack(p *inflightPoint) {
	w.mu.Lock()
	delete(w.inflight, p)
	w.mu.Unlock()
}

func (w *watchdog) loop() {
	defer close(w.done)
	tick := w.stall / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.sweep()
		}
	}
}

func (w *watchdog) sweep() {
	type stalled struct {
		task, key string
		running   time.Duration
	}
	var hits []stalled
	now := time.Now()
	w.mu.Lock()
	for p := range w.inflight {
		if p.flagged {
			continue
		}
		if running := now.Sub(p.start); running >= w.stall {
			p.flagged = true
			hits = append(hits, stalled{p.task, p.key, running})
		}
	}
	w.mu.Unlock()
	for _, h := range hits {
		metPointsStalled.Inc()
		if w.onStall != nil {
			w.onStall(h.task, h.key, h.running)
		}
	}
}

func (w *watchdog) close() {
	close(w.stop)
	<-w.done
}
