package campaign

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// forgeCRC returns 4 bytes which, appended to data, make the whole buffer's
// IEEE CRC-32 equal target. Standard CRC forging: run the table backwards
// from the target to find the 4 table indices the final updates must use,
// then forwards from data's checksum to find the bytes selecting them.
func forgeCRC(data []byte, target uint32) [4]byte {
	tab := crc32.MakeTable(crc32.IEEE)
	var rev [256]byte
	for i := 0; i < 256; i++ {
		rev[byte(tab[i]>>24)] = byte(i)
	}
	want := ^target
	var idxs [4]byte
	for i := 3; i >= 0; i-- {
		idx := rev[byte(want>>24)]
		idxs[i] = idx
		want = (want ^ tab[idx]) << 8
	}
	reg := ^crc32.ChecksumIEEE(data)
	var patch [4]byte
	for i := 0; i < 4; i++ {
		patch[i] = byte(reg) ^ idxs[i]
		reg = (reg >> 8) ^ tab[idxs[i]]
	}
	return patch
}

// TestZeroCRCRecordIsStillVerified pins the omitempty regression: a payload
// whose checksum is legitimately zero must serialise an explicit "crc":0 —
// under `uint32 ,omitempty` the field vanished and the record was accepted
// as an unverifiable legacy record, so corruption of exactly these payloads
// passed resume undetected.
func TestZeroCRCRecordIsStillVerified(t *testing.T) {
	// Craft a value whose gob encoding checksums to zero. A []byte's gob
	// stream ends with the slice's raw bytes, so patching the slice tail
	// patches the stream tail.
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	var stream bytes.Buffer
	if err := gob.NewEncoder(&stream).Encode(&data); err != nil {
		t.Fatal(err)
	}
	enc := stream.Bytes()
	patch := forgeCRC(enc[:len(enc)-4], 0)
	copy(data[len(data)-4:], patch[:])
	stream.Reset()
	if err := gob.NewEncoder(&stream).Encode(&data); err != nil {
		t.Fatal(err)
	}
	if got := crc32.ChecksumIEEE(stream.Bytes()); got != 0 {
		t.Fatalf("forged payload CRC = %#x, want 0", got)
	}

	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash := Hash("zero-crc", 0)
	if ok, err := j.Record("t/p0", hash, &data, 0); !ok || err != nil {
		t.Fatalf("Record = %v, %v", ok, err)
	}
	j.Close()

	path := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"crc":0`)) {
		t.Fatalf("zero checksum not serialised explicitly: %s", raw)
	}

	// Intact zero-CRC record restores…
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Corrupted() != 0 || j2.Restorable() != 1 {
		t.Fatalf("intact zero-CRC record: corrupted %d restorable %d, want 0/1", j2.Corrupted(), j2.Restorable())
	}
	got, ok, err := j2.lookup(hash, func() any { return new([]byte) })
	if err != nil || !ok {
		t.Fatalf("lookup = %v, %v", ok, err)
	}
	if !bytes.Equal(*got.(*[]byte), data) {
		t.Error("restored payload differs")
	}
	j2.Close()

	// …and a damaged one is caught, not waved through as legacy.
	var rec map[string]any
	line := bytes.TrimRight(raw, "\n")
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatal(err)
	}
	payload, err := base64.StdEncoding.DecodeString(rec["gob"].(string))
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)/2] ^= 0xff
	rec["gob"] = base64.StdEncoding.EncodeToString(payload)
	mutated, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(mutated, []byte(`"crc":0`)) {
		t.Fatalf("mutated record lost its crc field: %s", mutated)
	}
	if err := os.WriteFile(path, append(mutated, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Corrupted() != 1 || j3.Restorable() != 0 {
		t.Errorf("damaged zero-CRC record: corrupted %d restorable %d, want 1/0", j3.Corrupted(), j3.Restorable())
	}
}

// TestResumeSkipsFusedRecords covers two records fused onto one physical
// line — what an append after a torn tail used to produce. Both payloads on
// the fused line are lost (it is one unparseable lump), counted as one
// corrupted record, and both points recompute.
func TestResumeSkipsFusedRecords(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), threePointTask(&runs), Options{Workers: 1, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Remove the newline between records 0 and 1.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitN(data, []byte("\n"), 3)
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3", len(lines))
	}
	fused := append(append(append([]byte(nil), lines[0]...), lines[1]...), '\n')
	if err := os.WriteFile(path, append(fused, lines[2]...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Corrupted() != 1 {
		t.Errorf("Corrupted() = %d, want 1 (the fused line)", j2.Corrupted())
	}
	if j2.Restorable() != 1 {
		t.Errorf("Restorable() = %d, want 1", j2.Restorable())
	}
	second, err := Run(context.Background(), threePointTask(&runs), Options{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 5 {
		t.Errorf("resume recomputed %d points, want the 2 fused ones", runs.Load()-3)
	}
	if fmt.Sprint(second[0].Value) != fmt.Sprint(first[0].Value) {
		t.Errorf("resumed value %v != fresh %v", second[0].Value, first[0].Value)
	}
}

// TestTornTailOnlyRecordIsTruncatedAway covers a journal whose sole content
// is a half-written record: open must treat it as a torn tail (not damage),
// truncate it, and leave the file safe to append to — the old code left the
// torn bytes in place and the next append fused onto them.
func TestTornTailOnlyRecordIsTruncatedAway(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalName)
	if err := os.WriteFile(path, []byte(`{"key":"t/p0","hash":"abc","gob":"trunc`), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if j.Corrupted() != 0 || j.Restorable() != 0 {
		t.Fatalf("torn-only journal: corrupted %d restorable %d, want 0/0", j.Corrupted(), j.Restorable())
	}
	v := 1.5
	if ok, err := j.Record("t/p0", Hash("torn-only", 0), &v, 0); !ok || err != nil {
		t.Fatalf("Record after torn tail = %v, %v", ok, err)
	}
	j.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Corrupted() != 0 || j2.Restorable() != 1 {
		t.Errorf("reopen after append: corrupted %d restorable %d, want 0/1", j2.Corrupted(), j2.Restorable())
	}
}

// TestRecordSurfacesWriteErrors pins the bugfix: Record used to report a
// bare false on any failure, indistinguishable from "result not encodable".
// I/O failures must come back as errors; unencodable values must not.
func TestRecordSurfacesWriteErrors(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournalWith(dir, JournalOptions{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	v := 2.5
	if ok, err := j.Record("t/p0", Hash("sync", 0), &v, 0); !ok || err != nil {
		t.Fatalf("synced Record = %v, %v", ok, err)
	}
	// Unencodable value: skipped, not an error.
	if ok, err := j.Record("t/p1", Hash("sync", 1), make(chan int), 0); ok || err != nil {
		t.Fatalf("unencodable Record = %v, %v; want false, nil", ok, err)
	}
	j.Close()
	if ok, err := j.Record("t/p2", Hash("sync", 2), &v, 0); ok || err == nil {
		t.Fatalf("Record on closed journal = %v, %v; want false, error", ok, err)
	}
}

// TestJournalShardNameCreatesSubdir covers the shard naming used by the
// distributed executor: a Name with a directory component is created on
// demand and reopens by the same name.
func TestJournalShardNameCreatesSubdir(t *testing.T) {
	dir := t.TempDir()
	opts := JournalOptions{Name: filepath.Join("shards", "w1.jsonl"), Sync: true}
	j, err := OpenJournalWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	v := 3.5
	if ok, err := j.Record("t/p0", Hash("shard", 0), &v, 0); !ok || err != nil {
		t.Fatalf("Record = %v, %v", ok, err)
	}
	j.Close()
	if _, err := os.Stat(filepath.Join(dir, "shards", "w1.jsonl")); err != nil {
		t.Fatalf("shard file missing: %v", err)
	}
	j2, err := OpenJournalWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restorable() != 1 {
		t.Errorf("shard reopen Restorable() = %d, want 1", j2.Restorable())
	}
}
