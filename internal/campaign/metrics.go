package campaign

import "deepheal/internal/obs"

// Package-level instruments. Nil (free no-ops) until EnableMetrics installs
// live ones, matching the convention of the other instrumented packages.
var (
	metPointsRun       *obs.Counter
	metPointsMemo      *obs.Counter
	metPointsJournal   *obs.Counter
	metPointsJournaled *obs.Counter
	metPointErrors     *obs.Counter
	metPointSeconds    *obs.Histogram
	metTasksTotal      *obs.Counter
	metTaskErrors      *obs.Counter

	metPointRetries      *obs.Counter
	metPointsQuarantined *obs.Gauge
	metPointsStalled     *obs.Counter
	metJournalErrors     *obs.Counter
)

// EnableMetrics wires the campaign engine into r: how points were satisfied
// (computed, memo-deduplicated, journal-restored), per-point wall time and
// task completions. Pass nil to disable again.
func EnableMetrics(r *obs.Registry) {
	metPointsRun = r.Counter("deepheal_campaign_points_run_total",
		"campaign points computed in-process")
	metPointsMemo = r.Counter("deepheal_campaign_points_memo_total",
		"campaign points satisfied by content-hash memoisation")
	metPointsJournal = r.Counter("deepheal_campaign_points_resumed_total",
		"campaign points restored from an on-disk journal")
	metPointsJournaled = r.Counter("deepheal_campaign_points_journaled_total",
		"campaign point results persisted to the journal")
	metPointErrors = r.Counter("deepheal_campaign_point_errors_total",
		"campaign points that returned an error (including cancellation)")
	metPointSeconds = r.Histogram("deepheal_campaign_point_seconds",
		"wall time of one computed campaign point", nil)
	metTasksTotal = r.Counter("deepheal_campaign_tasks_total",
		"campaign tasks (experiments) completed, with or without error")
	metTaskErrors = r.Counter("deepheal_campaign_task_errors_total",
		"campaign tasks that finished with an error")
	metPointRetries = r.Counter("deepheal_campaign_point_retries_total",
		"campaign point attempts repeated after a transient failure")
	metPointsQuarantined = r.Gauge("deepheal_campaign_points_quarantined",
		"campaign points quarantined (panicked or exhausted retries) by runs in this process")
	metPointsStalled = r.Counter("deepheal_campaign_points_stalled_total",
		"campaign points flagged by the stall watchdog")
	metJournalErrors = r.Counter("deepheal_campaign_journal_errors_total",
		"journal appends that failed with an I/O error (result kept in memory, recomputes on resume)")
}
