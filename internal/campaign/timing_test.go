package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestReadStatsRoundTrip(t *testing.T) {
	outcomes := []Outcome{{
		Task:    "demo",
		Elapsed: 1500 * time.Millisecond,
		Points: []PointStat{
			{Task: "demo", Key: "demo/a", Source: "run", WallMS: 900, Attempts: 1},
			{Task: "demo", Key: "demo/b", Source: "memo", WallMS: 0},
		},
	}}
	path := filepath.Join(t.TempDir(), "points.json")
	if err := WriteStats(path, outcomes); err != nil {
		t.Fatal(err)
	}
	stats, err := ReadStats(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Task != "demo" || stats[0].ElapsedMS != 1500 {
		t.Fatalf("stats envelope = %+v", stats)
	}
	if len(stats[0].Points) != 2 || stats[0].Points[0].Key != "demo/a" || stats[0].Points[0].WallMS != 900 {
		t.Fatalf("points = %+v", stats[0].Points)
	}
}

func TestReadStatsRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "points.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStats(path); err == nil {
		t.Error("garbage stats accepted")
	}
	if _, err := ReadStats(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// timingFixture is one long point plus shorter fillers — the shape where LPT
// quality (and the critical-path callout) matters.
func timingFixture() []TaskStat {
	pts := []PointStat{
		{Key: "big/sweep", Source: "run", WallMS: 400},
		{Key: "mid/a", Source: "run", WallMS: 200},
		{Key: "mid/b", Source: "run", WallMS: 200},
		{Key: "small/a", Source: "run", WallMS: 100},
		{Key: "small/b", Source: "run", WallMS: 100},
		{Key: "free/memo", Source: "memo", WallMS: 0},
	}
	return []TaskStat{{Task: "t", Points: pts}}
}

func TestTimingReportContents(t *testing.T) {
	rep := TimingReport(timingFixture(), 3, []int{1, 2})
	if !strings.Contains(rep, "5 computed points, 1000.0 ms total compute (+1 memoised/restored)") {
		t.Fatalf("header wrong:\n%s", rep)
	}
	// Top-N is sorted descending and honours N.
	iBig := strings.Index(rep, "big/sweep")
	iMid := strings.Index(rep, "mid/a")
	if iBig < 0 || iMid < 0 || iBig > iMid {
		t.Fatalf("slowest ordering wrong:\n%s", rep)
	}
	if strings.Contains(rep, "small/b") {
		t.Fatalf("topN overflowed:\n%s", rep)
	}
	// 1 worker: makespan = total. 2 workers: LPT lands the optimum here —
	// {400, 100} vs {200, 200, 100}, balanced at 500 each.
	if !strings.Contains(rep, "1 worker(s): makespan   1000.0 ms, speedup 1.00x") {
		t.Fatalf("serial makespan wrong:\n%s", rep)
	}
	if !strings.Contains(rep, "2 worker(s): makespan    500.0 ms, speedup 2.00x") {
		t.Fatalf("2-worker makespan wrong:\n%s", rep)
	}
	// Critical path at 2 workers starts with the long point.
	if !strings.Contains(rep, "critical path: big/sweep") {
		t.Fatalf("critical path wrong:\n%s", rep)
	}
}

func TestTimingReportDeterministic(t *testing.T) {
	a := TimingReport(timingFixture(), 10, []int{1, 2, 4, 8})
	b := TimingReport(timingFixture(), 10, []int{1, 2, 4, 8})
	if a != b {
		t.Fatal("report not deterministic")
	}
}

func TestTimingReportEmpty(t *testing.T) {
	rep := TimingReport(nil, 5, []int{4})
	if !strings.Contains(rep, "0 computed points") {
		t.Fatalf("empty report = %q", rep)
	}
	if strings.Contains(rep, "LPT") {
		t.Fatalf("empty report should not model a schedule: %q", rep)
	}
}

func TestPathSummaryElidesTail(t *testing.T) {
	path := make([]PointStat, 7)
	for i := range path {
		path[i] = PointStat{Key: string(rune('a' + i))}
	}
	got := pathSummary(path, 4)
	want := "a → b → c → d → +3 more"
	if got != want {
		t.Fatalf("pathSummary = %q, want %q", got, want)
	}
}
