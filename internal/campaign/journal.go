package campaign

import (
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"deepheal/internal/faultinject"
)

// journalName is the on-disk journal file inside a campaign directory.
const journalName = "journal.jsonl"

// record is one completed point, one JSON object per line. The result
// payload is gob-encoded (base64 in the JSON envelope): gob round-trips
// float64 bit-exactly and handles the ±Inf values some wearout traces
// legitimately contain, which plain JSON cannot encode. CRC is an IEEE
// CRC-32 of the raw gob bytes, held through a pointer so presence survives
// the round trip: a payload whose checksum is legitimately zero still
// serialises as "crc":0 instead of disappearing under omitempty and being
// accepted unverified on resume. Records written before the field existed
// decode to a nil CRC and are accepted as-is (legacy).
type record struct {
	Key    string  `json:"key"`
	Hash   string  `json:"hash"`
	WallMS float64 `json:"wall_ms"`
	Gob    string  `json:"gob"`
	CRC    *uint32 `json:"crc,omitempty"`
}

// JournalOptions tunes how a journal file is opened.
type JournalOptions struct {
	// Name is the journal file name inside the campaign directory; empty
	// means the default journal.jsonl. Distributed shards use
	// shards/<worker>.jsonl so many writers never share a file.
	Name string
	// Sync fsyncs the journal file after every appended record, so a point
	// acknowledged as journaled survives power loss. Default on for
	// distributed shards (a merged shard must not contain ghosts), opt-in
	// for plain local resume where a lost tail merely recomputes.
	Sync bool
}

// Journal persists completed campaign points in a directory, append-only,
// keyed by content hash. Two corruption modes are distinguished on reload:
// a half-written trailing line (a killed campaign tore the final append) is
// expected, silently dropped and truncated away so later appends start on a
// fresh line, while a damaged record in the middle of the file — an
// unparseable line or a CRC mismatch — is skipped, counted in Corrupted and
// left for the caller to log. Either way the journal stays safe to resume
// from: a skipped point simply recomputes.
type Journal struct {
	dir  string
	path string
	sync bool

	mu        sync.Mutex
	f         *os.File
	entries   map[string]*record // hash → persisted record
	corrupted int
}

// OpenJournal opens (creating if needed) the default campaign journal in
// dir and indexes any points a previous run completed.
func OpenJournal(dir string) (*Journal, error) {
	return OpenJournalWith(dir, JournalOptions{})
}

// OpenJournalWith opens a journal file in dir with explicit options.
func OpenJournalWith(dir string, opts JournalOptions) (*Journal, error) {
	name := opts.Name
	if name == "" {
		name = journalName
	}
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: journal dir: %w", err)
	}
	j := &Journal{dir: dir, path: path, sync: opts.Sync, entries: make(map[string]*record)}
	if data, err := os.ReadFile(path); err == nil {
		recs, corrupted, intact := parseJournal(data)
		j.corrupted = corrupted
		for i := range recs {
			if recs[i].Hash != "" {
				rc := recs[i]
				j.entries[rc.Hash] = &rc
			}
		}
		if intact < int64(len(data)) {
			// Torn tail: truncate it away, otherwise the next append would
			// fuse onto the half-written line and corrupt a *good* record.
			if err := os.Truncate(path, intact); err != nil {
				return nil, fmt.Errorf("campaign: journal truncate torn tail: %w", err)
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: journal read: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal open: %w", err)
	}
	j.f = f
	return j, nil
}

// parseJournal scans one journal file's bytes: the intact records in file
// order, the damaged-record count, and the byte offset just past the last
// complete line (anything beyond it is a torn tail — an append cut short by
// a kill — which is expected and not counted as damage). A complete line
// that fails to parse, or whose CRC does not match its payload, counts as
// corrupted; a record with no CRC field at all is legacy and accepted
// unverified.
func parseJournal(data []byte) (recs []record, corrupted int, intact int64) {
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminating newline: torn tail, not damage.
			break
		}
		line := data[off : off+nl]
		off += nl + 1
		intact = int64(off)
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			corrupted++
			continue
		}
		if rec.CRC != nil {
			raw, err := base64.StdEncoding.DecodeString(rec.Gob)
			if err != nil || crc32.ChecksumIEEE(raw) != *rec.CRC {
				corrupted++
				continue
			}
		}
		recs = append(recs, rec)
	}
	return recs, corrupted, intact
}

// Corrupted reports how many damaged records (excluding an expected torn
// tail) were skipped when the journal was opened.
func (j *Journal) Corrupted() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupted
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Restorable returns how many completed points the journal currently holds.
func (j *Journal) Restorable() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Has reports whether the journal holds a result for hash.
func (j *Journal) Has(hash string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[hash]
	return ok
}

// Close releases the journal file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup decodes the persisted result for hash into a value allocated by
// newFn. ok is false when the hash is absent; a decode failure returns the
// error (the caller falls back to recomputing).
func (j *Journal) lookup(hash string, newFn func() any) (value any, ok bool, err error) {
	j.mu.Lock()
	rec := j.entries[hash]
	j.mu.Unlock()
	if rec == nil {
		return nil, false, nil
	}
	raw, err := base64.StdEncoding.DecodeString(rec.Gob)
	if err != nil {
		return nil, false, fmt.Errorf("campaign: journal %s: %w", rec.Key, err)
	}
	v := newFn()
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(v); err != nil {
		return nil, false, fmt.Errorf("campaign: journal %s: %w", rec.Key, err)
	}
	return v, true, nil
}

// Record appends a completed point and reports whether the result was
// actually persisted. Results gob cannot encode are skipped without error
// (the point simply re-runs on resume); an I/O failure — a full disk, a
// closed journal, a failed fsync — is returned so the caller can log the
// cause instead of silently losing durability.
func (j *Journal) Record(key, hash string, value any, wall time.Duration) (bool, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(value); err != nil {
		return false, nil
	}
	crc := crc32.ChecksumIEEE(payload.Bytes())
	rec := record{
		Key:    key,
		Hash:   hash,
		WallMS: float64(wall) / float64(time.Millisecond),
		Gob:    base64.StdEncoding.EncodeToString(payload.Bytes()),
		CRC:    &crc,
	}
	disk := rec
	if faultinject.Hit(faultinject.SiteJournalCorrupt, key) {
		// Damage only what reaches disk: this run keeps serving the good
		// in-memory entry, so the corruption is discovered — and must be
		// survived — by the next run's resume.
		raw := append([]byte(nil), payload.Bytes()...)
		raw[len(raw)/2] ^= 0xff
		disk.Gob = base64.StdEncoding.EncodeToString(raw)
	}
	line, err := json.Marshal(disk)
	if err != nil {
		return false, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(line); err != nil {
		return false, fmt.Errorf("campaign: journal %s: %w", key, err)
	}
	j.entries[hash] = &rec
	metPointsJournaled.Inc()
	return true, nil
}

// append writes one marshalled record line (plus newline) to the journal
// file, honouring the Sync option. Callers hold j.mu.
func (j *Journal) append(line []byte) error {
	if j.f == nil {
		return fmt.Errorf("journal is closed")
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("append: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("sync: %w", err)
		}
	}
	return nil
}

// AbsorbStats reports what one shard contributed to a merge.
type AbsorbStats struct {
	// Absorbed counts intact records appended to the merged journal.
	Absorbed int
	// Duplicates counts intact records whose hash the merged journal
	// already held — the cross-shard shared result cache at work.
	Duplicates int
	// Corrupted counts damaged records skipped (unparseable complete lines
	// or CRC mismatches).
	Corrupted int
	// TornTail reports that the shard ended mid-record — a worker died
	// while appending. The torn record is skipped; its point recomputes.
	TornTail bool
}

// AbsorbFile merges the journal file at path into j: every intact record
// whose hash j does not already hold is re-appended to j's own file, payload
// bytes preserved exactly, and becomes restorable. Damaged records and a
// torn tail are tolerated exactly as OpenJournal tolerates them — a shard
// torn by a dying worker merges cleanly, losing only the torn record. This
// is the shard-merge primitive of the distributed executor.
func (j *Journal) AbsorbFile(path string) (AbsorbStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return AbsorbStats{}, fmt.Errorf("campaign: absorb %s: %w", path, err)
	}
	recs, corrupted, intact := parseJournal(data)
	st := AbsorbStats{Corrupted: corrupted, TornTail: intact < int64(len(data))}
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range recs {
		rec := recs[i]
		if rec.Hash == "" {
			continue
		}
		if _, ok := j.entries[rec.Hash]; ok {
			st.Duplicates++
			continue
		}
		line, err := json.Marshal(rec)
		if err != nil {
			st.Corrupted++
			continue
		}
		if err := j.append(line); err != nil {
			return st, fmt.Errorf("campaign: absorb %s: %w", path, err)
		}
		rc := rec
		j.entries[rec.Hash] = &rc
		st.Absorbed++
	}
	return st, nil
}

// WriteStats saves the per-point execution statistics of a finished (or
// interrupted) campaign as JSON — the machine-readable artefact CI uploads
// next to the journal.
func WriteStats(path string, outcomes []Outcome) error {
	data, err := json.MarshalIndent(StatsFromOutcomes(outcomes), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
