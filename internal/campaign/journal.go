package campaign

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"deepheal/internal/faultinject"
)

// journalName is the on-disk journal file inside a campaign directory.
const journalName = "journal.jsonl"

// record is one completed point, one JSON object per line. The result
// payload is gob-encoded (base64 in the JSON envelope): gob round-trips
// float64 bit-exactly and handles the ±Inf values some wearout traces
// legitimately contain, which plain JSON cannot encode. CRC is an IEEE
// CRC-32 of the raw gob bytes; records written before the field existed
// carry no crc and are accepted as-is.
type record struct {
	Key    string  `json:"key"`
	Hash   string  `json:"hash"`
	WallMS float64 `json:"wall_ms"`
	Gob    string  `json:"gob"`
	CRC    uint32  `json:"crc,omitempty"`
}

// Journal persists completed campaign points in a directory, append-only,
// keyed by content hash. Two corruption modes are distinguished on reload:
// a half-written trailing line (a killed campaign tore the final append) is
// expected and silently ignored, while a damaged record in the middle of the
// file — an unparseable line or a CRC mismatch — is skipped, counted in
// Corrupted and left for the caller to log. Either way the journal stays
// safe to resume from: a skipped point simply recomputes.
type Journal struct {
	dir string

	mu        sync.Mutex
	f         *os.File
	entries   map[string]*record // hash → persisted record
	corrupted int
}

// OpenJournal opens (creating if needed) the campaign journal in dir and
// indexes any points a previous run completed.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: journal dir: %w", err)
	}
	j := &Journal{dir: dir, entries: make(map[string]*record)}
	path := filepath.Join(dir, journalName)
	if data, err := os.ReadFile(path); err == nil {
		lines := bytes.Split(data, []byte("\n"))
		for i, line := range lines {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var rec record
			if err := json.Unmarshal(line, &rec); err != nil {
				if i == len(lines)-1 {
					// Torn tail: the file does not end in a newline, so the
					// final append was cut short by a kill. Expected.
					continue
				}
				j.corrupted++
				continue
			}
			if rec.CRC != 0 {
				raw, err := base64.StdEncoding.DecodeString(rec.Gob)
				if err != nil || crc32.ChecksumIEEE(raw) != rec.CRC {
					j.corrupted++
					continue
				}
			}
			if rec.Hash != "" {
				rc := rec
				j.entries[rec.Hash] = &rc
			}
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: journal read: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: journal open: %w", err)
	}
	j.f = f
	return j, nil
}

// Corrupted reports how many damaged records (excluding an expected torn
// tail) were skipped when the journal was opened.
func (j *Journal) Corrupted() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.corrupted
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Restorable returns how many completed points the journal currently holds.
func (j *Journal) Restorable() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Close releases the journal file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// lookup decodes the persisted result for hash into a value allocated by
// newFn. ok is false when the hash is absent; a decode failure returns the
// error (the caller falls back to recomputing).
func (j *Journal) lookup(hash string, newFn func() any) (value any, ok bool, err error) {
	j.mu.Lock()
	rec := j.entries[hash]
	j.mu.Unlock()
	if rec == nil {
		return nil, false, nil
	}
	raw, err := base64.StdEncoding.DecodeString(rec.Gob)
	if err != nil {
		return nil, false, fmt.Errorf("campaign: journal %s: %w", rec.Key, err)
	}
	v := newFn()
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(v); err != nil {
		return nil, false, fmt.Errorf("campaign: journal %s: %w", rec.Key, err)
	}
	return v, true, nil
}

// record appends a completed point. It reports whether the result was
// actually persisted: results gob cannot encode are skipped (the point
// simply re-runs on resume) rather than failing the campaign.
func (j *Journal) record(key, hash string, value any, wall time.Duration) bool {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(value); err != nil {
		return false
	}
	rec := record{
		Key:    key,
		Hash:   hash,
		WallMS: float64(wall) / float64(time.Millisecond),
		Gob:    base64.StdEncoding.EncodeToString(payload.Bytes()),
		CRC:    crc32.ChecksumIEEE(payload.Bytes()),
	}
	disk := rec
	if faultinject.Hit(faultinject.SiteJournalCorrupt, key) {
		// Damage only what reaches disk: this run keeps serving the good
		// in-memory entry, so the corruption is discovered — and must be
		// survived — by the next run's resume.
		raw := append([]byte(nil), payload.Bytes()...)
		raw[len(raw)/2] ^= 0xff
		disk.Gob = base64.StdEncoding.EncodeToString(raw)
	}
	line, err := json.Marshal(disk)
	if err != nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return false
	}
	w := bufio.NewWriter(j.f)
	w.Write(line)
	w.WriteByte('\n')
	if err := w.Flush(); err != nil {
		return false
	}
	j.entries[hash] = &rec
	metPointsJournaled.Inc()
	return true
}

// WriteStats saves the per-point execution statistics of a finished (or
// interrupted) campaign as JSON — the machine-readable artefact CI uploads
// next to the journal.
func WriteStats(path string, outcomes []Outcome) error {
	data, err := json.MarshalIndent(StatsFromOutcomes(outcomes), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
