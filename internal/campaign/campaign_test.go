package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// sumTask builds a task whose points each return *float64 and whose
// assemble adds them up, tagging the result with the task id.
func sumTask(id string, vals ...float64) Task {
	t := Task{ID: id}
	for i, v := range vals {
		v := v
		t.Points = append(t.Points, NewPoint(
			fmt.Sprintf("%s/p%d", id, i),
			Hash(id, i, v),
			func(context.Context) (*float64, error) { out := v; return &out, nil },
		))
	}
	t.Assemble = func(results []any) (any, error) {
		sum := 0.0
		for _, r := range results {
			sum += *r.(*float64)
		}
		return fmt.Sprintf("%s=%g", id, sum), nil
	}
	return t
}

func TestRunTaskSerial(t *testing.T) {
	v, err := RunTask(context.Background(), sumTask("a", 1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if v != "a=6" {
		t.Fatalf("got %v", v)
	}
}

func TestRunDeliversInOrderForEveryWorkerCount(t *testing.T) {
	tasks := []Task{sumTask("a", 1), sumTask("b", 2, 3), sumTask("c", 4, 5, 6)}
	for _, workers := range []int{1, 2, 8} {
		var order []string
		outcomes, err := Run(context.Background(), tasks, Options{
			Workers: workers,
			OnTask:  func(o Outcome) { order = append(order, fmt.Sprint(o.Value)) },
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := []string{"a=1", "b=5", "c=15"}
		if strings.Join(order, " ") != strings.Join(want, " ") {
			t.Errorf("workers=%d: delivery order %v", workers, order)
		}
		for i, o := range outcomes {
			if o.Err != nil || fmt.Sprint(o.Value) != want[i] {
				t.Errorf("workers=%d: outcome[%d] = %v, %v", workers, i, o.Value, o.Err)
			}
			for _, p := range o.Points {
				if p.Source != "run" {
					t.Errorf("unexpected source %q for %s", p.Source, p.Key)
				}
			}
		}
	}
}

func TestValidateRejectsAmbiguousCampaigns(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, []Task{sumTask("a", 1), sumTask("a", 2)}, Options{}); err == nil {
		t.Error("duplicate task id accepted")
	}
	dup := []Task{sumTask("a", 1), sumTask("b", 2)}
	dup[1].Points[0].Key = "a/p0"
	if _, err := Run(ctx, dup, Options{}); err == nil {
		t.Error("duplicate point key accepted")
	}
	if _, err := Run(ctx, []Task{{ID: "x", Points: []Point{{Key: "k", Run: nil}}, Assemble: func([]any) (any, error) { return nil, nil }}}, Options{}); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestMemoComputesSharedHashOnce(t *testing.T) {
	var runs atomic.Int64
	point := func(task string, i int) Point {
		return NewPoint(fmt.Sprintf("%s/p%d", task, i), "shared-hash",
			func(context.Context) (*float64, error) {
				runs.Add(1)
				out := 42.0
				return &out, nil
			})
	}
	var tasks []Task
	for ti := 0; ti < 4; ti++ {
		task := Task{ID: fmt.Sprintf("t%d", ti)}
		for pi := 0; pi < 8; pi++ {
			task.Points = append(task.Points, point(task.ID, pi))
		}
		task.Assemble = func(results []any) (any, error) {
			for _, r := range results {
				if *r.(*float64) != 42.0 {
					return nil, errors.New("wrong memo value")
				}
			}
			return len(results), nil
		}
		tasks = append(tasks, task)
	}
	outcomes, err := Run(context.Background(), tasks, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("shared point computed %d times, want 1", got)
	}
	memoised := 0
	for _, o := range outcomes {
		for _, p := range o.Points {
			if p.Source == "memo" {
				memoised++
			}
		}
	}
	if memoised != 31 {
		t.Errorf("memo hits = %d, want 31", memoised)
	}
}

func TestPointErrorWinsByDeclarationOrder(t *testing.T) {
	bad := Task{
		ID: "bad",
		Points: []Point{
			NewPoint("bad/ok", "", func(context.Context) (*float64, error) { v := 1.0; return &v, nil }),
			NewPoint("bad/boom", "", func(context.Context) (*float64, error) { return nil, errors.New("boom") }),
		},
		Assemble: func([]any) (any, error) { return nil, errors.New("assemble must not run") },
	}
	var delivered []string
	outcomes, err := Run(context.Background(), []Task{sumTask("first", 1), bad, sumTask("after", 2)},
		Options{Workers: 4, OnTask: func(o Outcome) { delivered = append(delivered, o.Task) }})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	if len(outcomes) != 3 || outcomes[1].Err == nil {
		t.Fatalf("outcomes broken: %+v", outcomes)
	}
	// A failed point quarantines its task but never the stream: every
	// outcome is delivered in order, the failed one included.
	if !errors.Is(outcomes[1].Err, ErrQuarantined) {
		t.Errorf("failed task error %v does not mark quarantine", outcomes[1].Err)
	}
	if strings.Join(delivered, " ") != "first bad after" {
		t.Errorf("delivered %v, want [first bad after]", delivered)
	}
	// Tasks after the failed one still ran to completion.
	if outcomes[2].Err != nil || fmt.Sprint(outcomes[2].Value) != "after=2" {
		t.Errorf("task after failure: %v, %v", outcomes[2].Value, outcomes[2].Err)
	}
}

func TestCancelledContextSurfacesAndFlushesPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var delivered []string
	blocker := Task{
		ID: "blocker",
		Points: []Point{NewPoint("blocker/p", "", func(ctx context.Context) (*float64, error) {
			cancel() // cancel mid-campaign while this point is running
			v := 1.0
			return &v, ctx.Err()
		})},
		Assemble: func(results []any) (any, error) { return "blocked", nil },
	}
	_, err := Run(ctx, []Task{sumTask("done", 3), blocker, sumTask("never", 1)}, Options{
		Workers: 1,
		OnTask:  func(o Outcome) { delivered = append(delivered, o.Task) },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if strings.Join(delivered, " ") != "done" {
		t.Errorf("delivered %v, want the completed prefix [done]", delivered)
	}
}

func TestJournalResumeSkipsCompletedPoints(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	mk := func() []Task {
		t1 := sumTask("t1", 1, 2)
		t2 := Task{ID: "t2"}
		for i := 0; i < 3; i++ {
			i := i
			t2.Points = append(t2.Points, NewPoint(
				fmt.Sprintf("t2/p%d", i), Hash("t2", i),
				func(context.Context) (*float64, error) {
					runs.Add(1)
					v := float64(i) * 1.5
					return &v, nil
				}))
		}
		t2.Assemble = func(results []any) (any, error) {
			sum := 0.0
			for _, r := range results {
				sum += *r.(*float64)
			}
			return sum, nil
		}
		return []Task{t1, t2}
	}

	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(context.Background(), mk(), Options{Workers: 2, Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if got := runs.Load(); got != 3 {
		t.Fatalf("first run computed %d t2 points, want 3", got)
	}

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restorable() != 5 {
		t.Fatalf("journal holds %d points, want 5", j2.Restorable())
	}
	second, err := Run(context.Background(), mk(), Options{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("resume recomputed points: %d total runs, want 3", got)
	}
	for ti, o := range second {
		if fmt.Sprint(o.Value) != fmt.Sprint(first[ti].Value) {
			t.Errorf("%s: resumed value %v != fresh %v", o.Task, o.Value, first[ti].Value)
		}
		for _, p := range o.Points {
			if p.Source != "journal" {
				t.Errorf("%s: source %q, want journal", p.Key, p.Source)
			}
		}
	}
}

func TestJournalToleratesTornTailAndHashChanges(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), []Task{sumTask("a", 7)}, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a kill mid-append: a torn trailing line.
	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","hash":"xyz","gob":"AAA`)
	f.Close()

	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Restorable() != 1 {
		t.Fatalf("restorable = %d, want 1 (torn line dropped)", j2.Restorable())
	}

	// A changed hash (different inputs) must recompute, not restore.
	changed := sumTask("a", 8) // same keys, different value → different hash
	out, err := Run(context.Background(), []Task{changed}, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out[0].Value) != "a=8" {
		t.Errorf("stale journal value used: %v", out[0].Value)
	}
	if out[0].Points[0].Source != "run" {
		t.Errorf("source = %q, want run after hash change", out[0].Points[0].Source)
	}
}

func TestUnjournalableResultDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	type bad struct{ C chan int } // gob cannot encode channels
	task := Task{
		ID: "weird",
		Points: []Point{NewPoint("weird/p", Hash("weird"),
			func(context.Context) (*bad, error) { return &bad{C: make(chan int)}, nil })},
		Assemble: func(results []any) (any, error) { return "ok", nil },
	}
	out, err := Run(context.Background(), []Task{task}, Options{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Points[0].Journaled {
		t.Error("unencodable result claims to be journaled")
	}
	if j.Restorable() != 0 {
		t.Error("unencodable result landed in the journal index")
	}
}

func TestHashIsOrderAndBoundarySensitive(t *testing.T) {
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Error("length prefixing broken: part boundaries collide")
	}
	if Hash(1, 2) == Hash(2, 1) {
		t.Error("hash ignores part order")
	}
	if Hash(struct{ A float64 }{1.5}) != Hash(struct{ A float64 }{1.5}) {
		t.Error("hash not deterministic")
	}
	s1 := SampledSeries("w", 10, func(i int) float64 { return float64(i) })
	s2 := SampledSeries("w", 10, func(i int) float64 { return float64(i) })
	s3 := SampledSeries("w", 10, func(i int) float64 { return float64(i + 1) })
	if s1 != s2 || s1 == s3 {
		t.Error("sampled series digest broken")
	}
}

// BenchmarkEngineOverhead measures the per-point scheduling cost with
// trivial points — the fixed tax the campaign engine adds on top of the
// physics.
func BenchmarkEngineOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tasks := []Task{sumTask("a", 1, 2, 3, 4), sumTask("b", 5, 6, 7, 8)}
		if _, err := Run(context.Background(), tasks, Options{Workers: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPreQuarantinedPointsAreRecordedNotRun(t *testing.T) {
	var runs atomic.Int64
	task := Task{ID: "q"}
	mkPoint := func(i int) Point {
		return NewPoint(fmt.Sprintf("q/p%d", i), Hash("preq", i),
			func(context.Context) (*float64, error) {
				runs.Add(1)
				v := float64(i)
				return &v, nil
			})
	}
	for i := 0; i < 3; i++ {
		task.Points = append(task.Points, mkPoint(i))
	}
	task.Assemble = func(results []any) (any, error) { return len(results), nil }
	poisoned := map[string]string{task.Points[1].Hash: "killed 3 workers"}

	outcomes, err := Run(context.Background(), []Task{task}, Options{
		Workers: 1, Quarantined: poisoned,
	})
	if err == nil || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("run error = %v, want ErrQuarantined", err)
	}
	if runs.Load() != 2 {
		t.Errorf("executed %d points, want 2 (the listed one must never run)", runs.Load())
	}
	qs := QuarantinedPoints(outcomes)
	if len(qs) != 1 || qs[0].Key != "q/p1" || qs[0].Source != "quarantined" {
		t.Fatalf("quarantined = %+v, want q/p1 with source \"quarantined\"", qs)
	}
	if !strings.Contains(qs[0].Err, "killed 3 workers") {
		t.Errorf("quarantined stat error %q lost the marker's cause", qs[0].Err)
	}
}

func TestJournalRecordWinsOverPreQuarantine(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	task := Task{ID: "q"}
	task.Points = append(task.Points, NewPoint("q/p0", Hash("jq", 0),
		func(context.Context) (*float64, error) {
			runs.Add(1)
			v := 42.0
			return &v, nil
		}))
	task.Assemble = func(results []any) (any, error) { return len(results), nil }
	// First run journals the value.
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), []Task{task}, Options{Workers: 1, Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Second run pre-quarantines the same hash: the journaled value is
	// better evidence than the crash history and must win.
	j2, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	outcomes, err := Run(context.Background(), []Task{task}, Options{
		Workers: 1, Journal: j2,
		Quarantined: map[string]string{task.Points[0].Hash: "stale marker"},
	})
	if err != nil {
		t.Fatalf("journaled point still quarantined: %v", err)
	}
	if runs.Load() != 1 || outcomes[0].Points[0].Source != "journal" {
		t.Errorf("runs=%d source=%q, want 1 run total and journal restore", runs.Load(), outcomes[0].Points[0].Source)
	}
}
