// Package sensor models the on-chip wearout sensors the paper's system-level
// scheduling relies on (§IV.B): ring-oscillator frequency sensors for BTI
// threshold-voltage shift and resistance-ratio sensors for EM degradation.
// Both include quantisation and gaussian noise, and a calibration step that
// converts raw readings back to estimated wearout so scheduling policies can
// consume them.
package sensor

import (
	"errors"
	"fmt"

	"deepheal/internal/rngx"
)

// ROConfig describes a ring-oscillator BTI sensor.
type ROConfig struct {
	// FreshHz is the oscillation frequency of the unstressed oscillator.
	FreshHz float64
	// SensPerV is the fractional frequency loss per volt of threshold
	// shift (Δf/f0 = SensPerV · ΔVth).
	SensPerV float64
	// NoiseSigmaHz is the gaussian read noise.
	NoiseSigmaHz float64
	// CounterHz quantises readings to multiples of this bin (a real sensor
	// counts edges over a fixed window); 0 disables quantisation.
	CounterHz float64
}

// DefaultROConfig models the paper's 75-stage LUT ring oscillator testbed:
// tens of MHz, ≈4 %/100 mV sensitivity.
func DefaultROConfig() ROConfig {
	return ROConfig{
		FreshHz:      48e6,
		SensPerV:     0.42,
		NoiseSigmaHz: 2e3,
		CounterHz:    1e3,
	}
}

// Validate reports whether the configuration is usable.
func (c ROConfig) Validate() error {
	switch {
	case c.FreshHz <= 0:
		return errors.New("sensor: fresh frequency must be positive")
	case c.SensPerV <= 0:
		return errors.New("sensor: sensitivity must be positive")
	case c.NoiseSigmaHz < 0 || c.CounterHz < 0:
		return errors.New("sensor: noise and quantisation must be non-negative")
	}
	return nil
}

// ROSensor is one instantiated ring-oscillator sensor.
type ROSensor struct {
	cfg ROConfig
	rng *rngx.Source
}

// NewRO builds a sensor with its own deterministic noise stream.
func NewRO(cfg ROConfig, rng *rngx.Source) (*ROSensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("sensor: nil rng")
	}
	return &ROSensor{cfg: cfg, rng: rng}, nil
}

// Reading is one sampled sensor value.
type Reading struct {
	// FreqHz is the measured (noisy, quantised) oscillator frequency.
	FreqHz float64
	// ShiftV is the threshold-voltage shift estimated from the frequency
	// via the calibration curve.
	ShiftV float64
}

// Read samples the sensor given the true threshold shift of the monitored
// block.
func (s *ROSensor) Read(trueShiftV float64) Reading {
	metROReads.Inc()
	f := s.cfg.FreshHz * (1 - s.cfg.SensPerV*trueShiftV)
	f += s.rng.Normal(0, s.cfg.NoiseSigmaHz)
	if s.cfg.CounterHz > 0 {
		bins := f / s.cfg.CounterHz
		f = s.cfg.CounterHz * float64(int64(bins+0.5))
	}
	est := (1 - f/s.cfg.FreshHz) / s.cfg.SensPerV
	return Reading{FreqHz: f, ShiftV: est}
}

// EMConfig describes a resistance-ratio EM sensor: the monitored segment is
// compared against a matched unstressed reference, cancelling temperature.
type EMConfig struct {
	// RefOhm is the reference (fresh) resistance.
	RefOhm float64
	// NoiseSigmaFrac is the gaussian noise on the measured ratio.
	NoiseSigmaFrac float64
}

// DefaultEMConfig matches the paper's test wire at stress temperature.
func DefaultEMConfig() EMConfig {
	return EMConfig{RefOhm: 72.78, NoiseSigmaFrac: 5e-4}
}

// Validate reports whether the configuration is usable.
func (c EMConfig) Validate() error {
	if c.RefOhm <= 0 {
		return errors.New("sensor: reference resistance must be positive")
	}
	if c.NoiseSigmaFrac < 0 {
		return errors.New("sensor: noise must be non-negative")
	}
	return nil
}

// EMSensor is one instantiated resistance-ratio sensor.
type EMSensor struct {
	cfg EMConfig
	rng *rngx.Source
}

// NewEM builds an EM sensor with its own deterministic noise stream.
func NewEM(cfg EMConfig, rng *rngx.Source) (*EMSensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("sensor: nil rng")
	}
	return &EMSensor{cfg: cfg, rng: rng}, nil
}

// EMReading is one sampled EM sensor value.
type EMReading struct {
	// Ratio is the measured resistance ratio against the reference.
	Ratio float64
	// DeltaOhm is the estimated resistance increase.
	DeltaOhm float64
}

// Read samples the sensor given the true monitored resistance.
func (s *EMSensor) Read(trueOhm float64) (EMReading, error) {
	metEMReads.Inc()
	if trueOhm <= 0 {
		metEMErrors.Inc()
		return EMReading{}, fmt.Errorf("sensor: non-physical resistance %g", trueOhm)
	}
	ratio := trueOhm/s.cfg.RefOhm + s.rng.Normal(0, s.cfg.NoiseSigmaFrac)
	return EMReading{
		Ratio:    ratio,
		DeltaOhm: (ratio - 1) * s.cfg.RefOhm,
	}, nil
}
