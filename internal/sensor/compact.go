package sensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Compact codecs. A sensor's mutable state is just its noise stream
// position; the config rides along as fixed-width floats for the same
// compatibility check the gob form performs, without gob's type-descriptor
// overhead. The rngx compact form keeps the journal run-length encoded, so
// a sensor that draws once per step serialises to a few tens of bytes
// regardless of simulation age.

const (
	compactROMagic = 'S'
	compactEMMagic = 'T'
)

// SnapshotCompact serialises the RO sensor in the compact fleet framing.
func (s *ROSensor) SnapshotCompact() []byte {
	rng := s.rng.SnapshotCompact()
	buf := make([]byte, 0, 1+4*8+binary.MaxVarintLen64+len(rng))
	buf = append(buf, compactROMagic)
	for _, v := range []float64{s.cfg.FreshHz, s.cfg.SensPerV, s.cfg.NoiseSigmaHz, s.cfg.CounterHz} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rng)))
	return append(buf, rng...)
}

// RestoreCompact rewinds the RO sensor from a SnapshotCompact payload.
func (s *ROSensor) RestoreCompact(data []byte) error {
	cfgFloats, rng, err := splitCompactSensor(data, compactROMagic, "ro")
	if err != nil {
		return err
	}
	cfg := ROConfig{
		FreshHz:      cfgFloats[0],
		SensPerV:     cfgFloats[1],
		NoiseSigmaHz: cfgFloats[2],
		CounterHz:    cfgFloats[3],
	}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("sensor: ro restore compact: %w", err)
	}
	if err := s.rng.RestoreCompact(rng); err != nil {
		return fmt.Errorf("sensor: ro restore compact: %w", err)
	}
	s.cfg = cfg
	return nil
}

// SnapshotCompact serialises the EM sensor in the compact fleet framing.
func (s *EMSensor) SnapshotCompact() []byte {
	rng := s.rng.SnapshotCompact()
	buf := make([]byte, 0, 1+4*8+binary.MaxVarintLen64+len(rng))
	buf = append(buf, compactEMMagic)
	for _, v := range []float64{s.cfg.RefOhm, s.cfg.NoiseSigmaFrac, 0, 0} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(rng)))
	return append(buf, rng...)
}

// RestoreCompact rewinds the EM sensor from a SnapshotCompact payload.
func (s *EMSensor) RestoreCompact(data []byte) error {
	cfgFloats, rng, err := splitCompactSensor(data, compactEMMagic, "em")
	if err != nil {
		return err
	}
	cfg := EMConfig{RefOhm: cfgFloats[0], NoiseSigmaFrac: cfgFloats[1]}
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("sensor: em restore compact: %w", err)
	}
	if err := s.rng.RestoreCompact(rng); err != nil {
		return fmt.Errorf("sensor: em restore compact: %w", err)
	}
	s.cfg = cfg
	return nil
}

// splitCompactSensor validates the shared framing: magic, four config
// floats, then a length-prefixed rng payload.
func splitCompactSensor(data []byte, magic byte, kind string) ([4]float64, []byte, error) {
	var cfg [4]float64
	if len(data) < 1+4*8+1 || data[0] != magic {
		return cfg, nil, fmt.Errorf("sensor: %s restore compact: bad frame", kind)
	}
	rest := data[1:]
	for i := range cfg {
		cfg[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	}
	rngLen, n := binary.Uvarint(rest)
	if n <= 0 || rngLen != uint64(len(rest[n:])) {
		return cfg, nil, fmt.Errorf("sensor: %s restore compact: truncated rng payload", kind)
	}
	return cfg, rest[n:], nil
}
