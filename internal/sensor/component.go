package sensor

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"deepheal/internal/engine"
)

// Both sensors implement engine.Component. Sensors do not evolve with time
// (StepUnder is a no-op) but their noise streams are real state: a resumed
// simulation must read the same noise sequence the uninterrupted one would.

// StepUnder implements engine.Component; sensors advance only when read.
func (s *ROSensor) StepUnder(engine.Condition) error { return nil }

// roSnapshot is the serialised form of an RO sensor.
type roSnapshot struct {
	Config ROConfig
	RNG    []byte
}

// Snapshot implements engine.Component.
func (s *ROSensor) Snapshot() ([]byte, error) {
	rng, err := s.rng.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("sensor: ro snapshot: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(roSnapshot{Config: s.cfg, RNG: rng}); err != nil {
		return nil, fmt.Errorf("sensor: ro snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements engine.Component.
func (s *ROSensor) Restore(data []byte) error {
	var snap roSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("sensor: ro restore: %w", err)
	}
	if err := snap.Config.Validate(); err != nil {
		return fmt.Errorf("sensor: ro restore: %w", err)
	}
	if err := s.rng.Restore(snap.RNG); err != nil {
		return fmt.Errorf("sensor: ro restore: %w", err)
	}
	s.cfg = snap.Config
	return nil
}

// Validate implements engine.Component.
func (s *ROSensor) Validate() error { return s.cfg.Validate() }

// StepUnder implements engine.Component; sensors advance only when read.
func (s *EMSensor) StepUnder(engine.Condition) error { return nil }

// emSnapshot is the serialised form of an EM sensor.
type emSnapshot struct {
	Config EMConfig
	RNG    []byte
}

// Snapshot implements engine.Component.
func (s *EMSensor) Snapshot() ([]byte, error) {
	rng, err := s.rng.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("sensor: em snapshot: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(emSnapshot{Config: s.cfg, RNG: rng}); err != nil {
		return nil, fmt.Errorf("sensor: em snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements engine.Component.
func (s *EMSensor) Restore(data []byte) error {
	var snap emSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return fmt.Errorf("sensor: em restore: %w", err)
	}
	if err := snap.Config.Validate(); err != nil {
		return fmt.Errorf("sensor: em restore: %w", err)
	}
	if err := s.rng.Restore(snap.RNG); err != nil {
		return fmt.Errorf("sensor: em restore: %w", err)
	}
	s.cfg = snap.Config
	return nil
}

// Validate implements engine.Component.
func (s *EMSensor) Validate() error { return s.cfg.Validate() }
