package sensor

import (
	"testing"

	"deepheal/internal/rngx"
)

func TestROCompactRoundTrip(t *testing.T) {
	s, err := NewRO(DefaultROConfig(), rngx.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.Read(0.005)
	}
	data := s.SnapshotCompact()
	want := s.Read(0.005)

	r, err := NewRO(DefaultROConfig(), rngx.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreCompact(data); err != nil {
		t.Fatal(err)
	}
	if got := r.Read(0.005); got != want {
		t.Errorf("restored sensor read %+v, want %+v", got, want)
	}
	// The journal is one RLE run; size must not scale with read count.
	if len(data) > 128 {
		t.Errorf("compact RO snapshot is %dB after 500 reads; journal not run-length encoded?", len(data))
	}
}

func TestEMCompactRoundTrip(t *testing.T) {
	s, err := NewEM(DefaultEMConfig(), rngx.New(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := s.Read(73.0); err != nil {
			t.Fatal(err)
		}
	}
	data := s.SnapshotCompact()
	want, err := s.Read(73.0)
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewEM(DefaultEMConfig(), rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RestoreCompact(data); err != nil {
		t.Fatal(err)
	}
	got, err := r.Read(73.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("restored sensor read %+v, want %+v", got, want)
	}
}

func TestSensorCompactRejectsGarbage(t *testing.T) {
	ro, err := NewRO(DefaultROConfig(), rngx.New(3))
	if err != nil {
		t.Fatal(err)
	}
	good := ro.SnapshotCompact()
	for _, junk := range [][]byte{nil, {}, good[:10], append([]byte{0xff}, good[1:]...)} {
		if err := ro.RestoreCompact(junk); err == nil {
			t.Errorf("garbage of %d bytes accepted by RO sensor", len(junk))
		}
	}
}
