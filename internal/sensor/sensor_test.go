package sensor

import (
	"math"
	"testing"

	"deepheal/internal/rngx"
)

func TestROReadingTracksShift(t *testing.T) {
	s, err := NewRO(DefaultROConfig(), rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r0 := s.Read(0)
	r40 := s.Read(0.040)
	if r40.FreqHz >= r0.FreqHz {
		t.Errorf("frequency did not drop with wearout: %g vs %g", r40.FreqHz, r0.FreqHz)
	}
	if math.Abs(r40.ShiftV-0.040) > 0.004 {
		t.Errorf("estimated shift %.4f V, true 0.040 V", r40.ShiftV)
	}
}

func TestROEstimationAccuracyStatistics(t *testing.T) {
	s, err := NewRO(DefaultROConfig(), rngx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	const trueShift = 0.025
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		sum += s.Read(trueShift).ShiftV
	}
	mean := sum / n
	if math.Abs(mean-trueShift) > 0.001 {
		t.Errorf("mean estimate %.4f, want %.4f", mean, trueShift)
	}
}

func TestROQuantisation(t *testing.T) {
	cfg := DefaultROConfig()
	cfg.NoiseSigmaHz = 0
	cfg.CounterHz = 1e5
	s, err := NewRO(cfg, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Read(0.013)
	if rem := math.Mod(r.FreqHz, 1e5); rem > 1e-6 && rem < 1e5-1e-6 {
		t.Errorf("frequency %g not quantised to 100 kHz bins", r.FreqHz)
	}
}

func TestRONoiseless(t *testing.T) {
	cfg := DefaultROConfig()
	cfg.NoiseSigmaHz = 0
	cfg.CounterHz = 0
	s, err := NewRO(cfg, rngx.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Read(0.020)
	if math.Abs(r.ShiftV-0.020) > 1e-12 {
		t.Errorf("noiseless estimate %.6f, want exact", r.ShiftV)
	}
}

func TestROValidation(t *testing.T) {
	bad := DefaultROConfig()
	bad.FreshHz = 0
	if _, err := NewRO(bad, rngx.New(1)); err == nil {
		t.Error("zero frequency accepted")
	}
	bad = DefaultROConfig()
	bad.SensPerV = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative sensitivity accepted")
	}
	if _, err := NewRO(DefaultROConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestEMSensorTracksResistance(t *testing.T) {
	s, err := NewEM(DefaultEMConfig(), rngx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Read(74.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.DeltaOhm-(74.5-72.78)) > 0.2 {
		t.Errorf("delta %.3f, want ≈1.72", r.DeltaOhm)
	}
	if r.Ratio < 1 {
		t.Error("stressed wire ratio must exceed 1")
	}
}

func TestEMSensorRejectsNonPhysical(t *testing.T) {
	s, err := NewEM(DefaultEMConfig(), rngx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(0); err == nil {
		t.Error("zero resistance accepted")
	}
}

func TestEMValidation(t *testing.T) {
	bad := DefaultEMConfig()
	bad.RefOhm = 0
	if _, err := NewEM(bad, rngx.New(1)); err == nil {
		t.Error("zero reference accepted")
	}
	bad = DefaultEMConfig()
	bad.NoiseSigmaFrac = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative noise accepted")
	}
	if _, err := NewEM(DefaultEMConfig(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestSensorsDeterministic(t *testing.T) {
	a, _ := NewRO(DefaultROConfig(), rngx.New(9))
	b, _ := NewRO(DefaultROConfig(), rngx.New(9))
	for i := 0; i < 20; i++ {
		if a.Read(0.01).FreqHz != b.Read(0.01).FreqHz {
			t.Fatal("same-seed sensors diverged")
		}
	}
}
