package sensor

import "deepheal/internal/obs"

// Package-level instruments for the wearout sensors. Nil (free no-ops)
// until EnableMetrics installs live ones.
var (
	metROReads  *obs.Counter
	metEMReads  *obs.Counter
	metEMErrors *obs.Counter
)

// EnableMetrics registers the package's instruments in r. Pass nil to
// disable again. Call before sensors start sampling; installation is not
// synchronised with concurrent reads.
func EnableMetrics(r *obs.Registry) {
	metROReads = r.Counter("deepheal_sensor_ro_reads_total",
		"ring-oscillator BTI sensor samples")
	metEMReads = r.Counter("deepheal_sensor_em_reads_total",
		"resistance-ratio EM sensor samples")
	metEMErrors = r.Counter("deepheal_sensor_em_read_errors_total",
		"EM sensor reads rejected for non-physical inputs")
}
