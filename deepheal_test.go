package deepheal_test

import (
	"context"
	"math"
	"testing"
	"time"

	"deepheal"
)

// These tests exercise the public facade the way a downstream user would —
// everything here goes through the root package only.

func TestQuickstartFlow(t *testing.T) {
	dev, err := deepheal.NewBTIDevice(deepheal.DefaultBTIParams())
	if err != nil {
		t.Fatal(err)
	}
	dev.Apply(deepheal.StressAccel, deepheal.Hours(24))
	if dev.ShiftV() <= 0 {
		t.Fatal("stress produced no shift")
	}
	deep := dev.RecoveryFraction(deepheal.RecoverDeep, deepheal.Hours(6))
	passive := dev.RecoveryFraction(deepheal.RecoverPassive, deepheal.Hours(6))
	if deep < 0.65 || passive > 0.05 {
		t.Errorf("deep %.2f / passive %.2f out of expected ranges", deep, passive)
	}
}

func TestWireFlow(t *testing.T) {
	w, err := deepheal.NewWire(deepheal.DefaultEMParams())
	if err != nil {
		t.Fatal(err)
	}
	j := deepheal.MAPerCm2(7.96)
	temp := deepheal.Celsius(230)
	ttf, err := w.TimeToFailure(j, temp, deepheal.Hours(48))
	if err != nil {
		t.Fatal(err)
	}
	if min := ttf / 60; min < 800 || min > 1400 {
		t.Errorf("TTF %.0f min out of band", min)
	}
}

func TestAssistFlow(t *testing.T) {
	a, err := deepheal.NewAssist(deepheal.DefaultAssistConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetMode(deepheal.ModeEMRecovery); err != nil {
		t.Fatal(err)
	}
	op, err := a.Operating()
	if err != nil {
		t.Fatal(err)
	}
	if op.GridCurrent >= 0 {
		t.Error("EM recovery mode must reverse the grid current")
	}
	pts, err := deepheal.AssistLoadSweep(deepheal.DefaultAssistConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Errorf("sweep points = %d", len(pts))
	}
}

func TestSystemFlow(t *testing.T) {
	cfg := deepheal.DefaultSystemConfig()
	cfg.Steps = 60
	cfg.Workloads = make([]deepheal.WorkloadProfile, cfg.NumCores())
	for i := range cfg.Workloads {
		cfg.Workloads[i] = deepheal.ConstantWorkload(0.6)
	}
	sim, err := deepheal.NewSimulator(cfg, deepheal.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 60 {
		t.Errorf("series = %d", len(rep.Series))
	}
	if rep.Policy != "deep-healing" {
		t.Errorf("policy = %q", rep.Policy)
	}
}

func TestEngineFacade(t *testing.T) {
	cfg := deepheal.SystemConfigForGrid(3, 3)
	cfg.Steps = 40
	var steps int
	stageSeen := map[deepheal.StageName]bool{}
	sim, err := deepheal.NewSimulator(cfg, deepheal.DefaultDeepHealing(),
		deepheal.WithWorkers(2),
		deepheal.WithProgress(func(step, total int) { steps = step }),
		deepheal.WithStageTime(func(stage deepheal.StageName, _ time.Duration) { stageSeen[stage] = true }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSteps(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := deepheal.NewSimulator(cfg, deepheal.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	rep, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Series) != 40 || steps != 20 || len(stageSeen) != 6 {
		t.Errorf("series %d, progress %d, stages %d", len(rep.Series), steps, len(stageSeen))
	}

	reports, err := deepheal.RunPoliciesContext(context.Background(), cfg, 2,
		&deepheal.NoRecoveryPolicy{}, deepheal.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Policy != "no-recovery" {
		t.Error("RunPoliciesContext order broken")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := deepheal.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	res, err := deepheal.RunExperiment(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID() != "table1" || res.Format() == "" {
		t.Error("experiment facade broken")
	}
	if _, err := deepheal.RunExperiment(context.Background(), "bogus"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMarginFacade(t *testing.T) {
	r := deepheal.MarginReduction(
		deepheal.Margin{FreshDelay: 1, WornDelay: 1.2},
		deepheal.Margin{FreshDelay: 1, WornDelay: 1.05},
	)
	if math.Abs(r-4) > 1e-9 {
		t.Errorf("reduction = %g, want 4", r)
	}
}

func TestWorkloadFacade(t *testing.T) {
	trace, err := deepheal.TraceWorkload("log", []float64{0, 10}, []float64{0.2, 0.8}, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []deepheal.WorkloadProfile{
		deepheal.ConstantWorkload(0.5),
		deepheal.PeriodicWorkload(2, 2, 0.8),
		deepheal.IoTWorkload(10, 2, 0.9),
		trace,
	} {
		v := w.At(0)
		if v < 0 || v > 1 {
			t.Errorf("%s: utilisation %g out of range", w.Name(), v)
		}
	}
	if _, err := deepheal.TraceWorkload("bad", []float64{1}, []float64{1}, false); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestBlackFacade(t *testing.T) {
	mttf, err := deepheal.DefaultBlackParams().MTTF(deepheal.MAPerCm2(7.96), deepheal.Celsius(230))
	if err != nil {
		t.Fatal(err)
	}
	if mttf <= 0 {
		t.Error("non-positive MTTF")
	}
}

func TestRNGFacade(t *testing.T) {
	a, b := deepheal.NewRNG(1), deepheal.NewRNG(1)
	if a.Float64() != b.Float64() {
		t.Error("rng not deterministic")
	}
}

func TestEMSegmentFacade(t *testing.T) {
	seg, err := deepheal.NewEMSegment(deepheal.DefaultEMReducedParams())
	if err != nil {
		t.Fatal(err)
	}
	seg.Step(deepheal.MAPerCm2(7.96), deepheal.Celsius(230), 3600)
	if seg.Progress() <= 0 {
		t.Error("segment did not accumulate progress")
	}
}
