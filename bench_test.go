package deepheal_test

import (
	"context"
	"fmt"
	"testing"

	"deepheal"
	"deepheal/internal/experiments"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (one benchmark per artefact) and report the headline
// reproduced quantity as a custom metric, so `go test -bench=.` doubles as
// the full reproduction harness. EXPERIMENTS.md records the values.

// BenchmarkTable1BTIRecovery regenerates Table I.
func BenchmarkTable1BTIRecovery(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for i, row := range last.Rows {
		b.ReportMetric(row.Simulated*100, fmt.Sprintf("no%d_rec_%%", i+1))
	}
}

// BenchmarkFig4PermanentBTI regenerates Fig. 4.
func BenchmarkFig4PermanentBTI(b *testing.B) {
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig4(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	final := last.Cycles - 1
	b.ReportMetric(last.Patterns[0].Residuals[final].ResidualV*1e3, "residual_1to1_mV")
	b.ReportMetric(last.Patterns[2].Residuals[final].ResidualV*1e3, "residual_4to1_mV")
}

// BenchmarkFig5EMRecovery regenerates Fig. 5.
func BenchmarkFig5EMRecovery(b *testing.B) {
	var last *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.NucleationMin, "nucleation_min")
	b.ReportMetric(last.ActiveRecovered*100, "active_rec_%")
	b.ReportMetric(last.PassiveRecovered*100, "passive_rec_%")
	b.ReportMetric(last.PermanentOhm, "permanent_ohm")
}

// BenchmarkFig6EMFullRecovery regenerates Fig. 6.
func BenchmarkFig6EMFullRecovery(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ResidualOhm, "residual_ohm")
	b.ReportMetric(last.ReverseEMOnset, "reverse_em_onset_min")
}

// BenchmarkFig7ScheduledEM regenerates Fig. 7.
func BenchmarkFig7ScheduledEM(b *testing.B) {
	var last *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ScheduledNucleationMin/last.BaselineNucleationMin, "nucleation_delay_x")
	b.ReportMetric(last.ScheduledTTFMin/last.BaselineTTFMin, "ttf_extension_x")
}

// BenchmarkFig9AssistCircuit regenerates Fig. 9.
func BenchmarkFig9AssistCircuit(b *testing.B) {
	var last *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.BTI.LoadVSS, "bti_load_vss_V")
	b.ReportMetric(last.BTI.LoadVDD, "bti_load_vdd_V")
	b.ReportMetric(last.EM.GridCurrent*1e6, "em_grid_uA")
}

// BenchmarkFig10LoadSizing regenerates Fig. 10.
func BenchmarkFig10LoadSizing(b *testing.B) {
	var last *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig10(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	final := last.Points[len(last.Points)-1]
	b.ReportMetric(final.NormalizedDelay, "delay_5loads_x")
	b.ReportMetric(final.NormalizedTSw, "tsw_5loads_x")
}

// BenchmarkFig12SystemSchedule regenerates Fig. 12(b).
func BenchmarkFig12SystemSchedule(b *testing.B) {
	var last *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig12(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MarginReduction, "margin_reduction_x")
	b.ReportMetric(last.Policies[0].Report.GuardbandFrac*100, "worstcase_guardband_%")
	b.ReportMetric(last.Policies[2].Report.GuardbandFrac*100, "deepheal_guardband_%")
}

// BenchmarkAblationEMFrequency regenerates ablation A1.
func BenchmarkAblationEMFrequency(b *testing.B) {
	var last *experiments.EMFreqResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationEMFrequency(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.DCTTFMin, "dc_ttf_min")
	b.ReportMetric(last.Points[0].TTFMin/last.DCTTFMin, "slowest_ac_gain_x")
}

// BenchmarkAblationBTIConditions regenerates ablation A2.
func BenchmarkAblationBTIConditions(b *testing.B) {
	var last *experiments.BTICondResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationBTIConditions(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Grid[len(last.TempsC)-1][len(last.Volts)-1]*100, "max_rec_%")
}

// BenchmarkAblationScheduleGranularity regenerates ablation A3.
func BenchmarkAblationScheduleGranularity(b *testing.B) {
	var last *experiments.ScheduleResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationSchedule(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	best := last.Baseline
	for _, p := range last.Points {
		if p.Guardband < best {
			best = p.Guardband
		}
	}
	b.ReportMetric(last.Baseline/best, "best_guardband_gain_x")
}

// BenchmarkAblationPolicyZoo regenerates ablation A4.
func BenchmarkAblationPolicyZoo(b *testing.B) {
	var last *experiments.PolicyZooResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPolicyZoo(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Reports[0].GuardbandFrac*100, "worst_guardband_%")
	b.ReportMetric(last.Reports[len(last.Reports)-1].GuardbandFrac*100, "heataware_guardband_%")
}

// BenchmarkAblationRebalance regenerates ablation A5.
func BenchmarkAblationRebalance(b *testing.B) {
	var last *experiments.RebalanceResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationRebalance(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[1].ShiftV*1e3, "rebalanced_mV")
	b.ReportMetric(last.Rows[3].ShiftV*1e3, "deepheal_mV")
}

// BenchmarkVariationStudy regenerates the population study.
func BenchmarkVariationStudy(b *testing.B) {
	var last *experiments.VariationResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunVariation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TailReduction, "tail_reduction_x")
}

// Kernel micro-benchmarks: the hot paths behind the experiments.

// BenchmarkBTIStressHour measures one hour of CET-map evolution.
func BenchmarkBTIStressHour(b *testing.B) {
	dev := deepheal.MustNewBTIDevice(deepheal.DefaultBTIParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Apply(deepheal.StressAccel, deepheal.Hours(1))
	}
}

// BenchmarkKorhonenStep measures one implicit PDE step of the wire model.
func BenchmarkKorhonenStep(b *testing.B) {
	w := deepheal.MustNewWire(deepheal.DefaultEMParams())
	j := deepheal.MAPerCm2(7.96)
	temp := deepheal.Celsius(230)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step(j, temp, 30)
		if w.Broken() {
			w.Reset()
		}
	}
}

// BenchmarkAssistDC measures one nonlinear DC solve of the assist netlist.
func BenchmarkAssistDC(b *testing.B) {
	a, err := deepheal.NewAssist(deepheal.DefaultAssistConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Operating(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemStep measures the per-step cost of the system simulator
// via a short horizon run.
func BenchmarkSystemStep(b *testing.B) {
	cfg := deepheal.DefaultSystemConfig()
	cfg.Steps = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := deepheal.NewSimulator(cfg, deepheal.DefaultDeepHealing())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCampaign runs the full registered experiment suite through the
// campaign engine at the given worker count, so the serial/parallel pair
// below measures the wall-clock effect of fanning points across cores
// (identical output is asserted by TestCampaignParallelMatchesSerial).
func benchCampaign(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		if _, err := deepheal.RunCampaign(context.Background(), nil, deepheal.CampaignOptions{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignAllSerial is the whole suite on one worker.
func BenchmarkCampaignAllSerial(b *testing.B) { benchCampaign(b, 1) }

// BenchmarkCampaignAllParallel is the whole suite on one worker per CPU;
// the ratio to BenchmarkCampaignAllSerial is the multi-core speedup.
func BenchmarkCampaignAllParallel(b *testing.B) { benchCampaign(b, 0) }
