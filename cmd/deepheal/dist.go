package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"deepheal/internal/campaign"
	"deepheal/internal/campaign/dist"
	"deepheal/internal/core"
	"deepheal/internal/experiments"
	"deepheal/internal/faultinject"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
)

// exitWorkerDied is the worker verb's exit code when the injected
// worker-die fault fires — distinct from 1 so chaos scripts can assert the
// death was the planned one.
const exitWorkerDied = 7

// armFaults parses and installs a fault-injection spec; the returned
// disarm func is a no-op when spec is empty.
func armFaults(spec string, seed uint64) (func(), error) {
	if spec == "" {
		return func() {}, nil
	}
	plan, err := faultinject.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	inj, err := faultinject.New(seed, plan)
	if err != nil {
		return nil, err
	}
	faultinject.Enable(inj)
	fmt.Fprintf(os.Stderr, "fault injection armed: %s (seed %d)\n", spec, seed)
	return faultinject.Disable, nil
}

// runWorkerCmd joins a distributed campaign as one worker process: wait for
// the coordinator's manifest, rebuild the experiment plans it names, then
// lease, execute and journal points until the queue drains.
func runWorkerCmd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deepheal worker", flag.ContinueOnError)
	dir := fs.String("dir", "", "campaign directory shared with the coordinator (required)")
	id := fs.String("id", "", "worker id, the shard file name (default <host>-<pid>)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "point lease lifetime; a worker silent this long has its point stolen")
	maxAttempts := fs.Int("max-attempts", 3, "fleet-wide crash budget per point before it is quarantined as poison (<0 disables)")
	poll := fs.Duration("poll", 100*time.Millisecond, "idle rescan interval while other workers hold the remaining leases")
	manifestWait := fs.Duration("manifest-wait", time.Minute, "how long to wait for the coordinator's manifest to appear")
	faults := fs.String("faults", "", "fault-injection spec, e.g. 'worker-die:occ=3' (see internal/faultinject)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault injector (-faults)")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal worker -dir <campaign-dir> [flags]\n\n"+
			"Joins a distributed campaign published by `deepheal coordinate -dir <campaign-dir>`.\n"+
			"Results land in the worker's own CRC'd journal shard; kill the process at any\n"+
			"point and the coordinator's merge still assembles byte-identical output.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("worker: -dir is required")
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("worker: unexpected argument %q (experiments come from the manifest)", fs.Arg(0))
	}
	disarm, err := armFaults(*faults, *faultSeed)
	if err != nil {
		return err
	}
	defer disarm()
	var reg *obs.Registry
	if metrics.Enabled() {
		reg = obs.NewRegistry()
	}
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	campaign.EnableMetrics(reg)
	defer campaign.EnableMetrics(nil)
	dist.EnableMetrics(reg)
	defer dist.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return err
	}

	waitCtx, cancel := context.WithTimeout(ctx, *manifestWait)
	m, err := dist.WaitManifest(waitCtx, *dir, *poll)
	cancel()
	if err != nil {
		return err
	}
	tasks, err := experiments.Plans(m.Experiments...)
	if err != nil {
		return fmt.Errorf("worker: rebuilding plans from manifest: %w", err)
	}
	fmt.Fprintf(os.Stderr, "worker: joined %s (%d points, %d experiments)\n", *dir, len(m.Points), len(m.Experiments))
	stats, runErr := dist.RunWorker(ctx, *dir, m, tasks, dist.WorkerOptions{
		ID:          *id,
		LeaseTTL:    *leaseTTL,
		Poll:        *poll,
		MaxAttempts: *maxAttempts,
	})
	fmt.Fprintf(os.Stderr, "worker: %d computed, %d cache hits, %d leases stolen, %d failed, %d quarantined (%.2fs)\n",
		stats.Completed, stats.CacheHits, stats.Stolen, stats.Failed, stats.Quarantined, stats.WallSeconds)
	if errors.Is(runErr, dist.ErrWorkerDied) {
		// Mimic a real crash as closely as an orderly process can: skip
		// metrics finish and exit through the dedicated code.
		fmt.Fprintln(os.Stderr, "worker:", runErr)
		os.Exit(exitWorkerDied)
	}
	if runErr != nil {
		finishMetrics()
		return runErr
	}
	return finishMetrics()
}

// runCoordinate drives a distributed campaign end to end: publish the
// content-hashed work queue into -dir, run -local-workers in-process
// workers while external `deepheal worker` processes join against the same
// directory, wait for the queue to drain, merge every shard into the
// canonical journal, then assemble through the ordinary campaign engine —
// whose journal-restore path makes the printed and written output
// byte-identical to a plain serial run.
func runCoordinate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deepheal coordinate", flag.ContinueOnError)
	dir := fs.String("dir", "", "campaign directory to publish the work queue into (required)")
	quiet := fs.Bool("q", false, "print only experiment summaries, not full series")
	outDir := fs.String("o", "", "also write <id>.txt (and <id>_<series>.tsv where available) into this directory")
	localWorkers := fs.Int("local-workers", 1, "in-process workers to run alongside external ones (0 = pure coordinator, requires external `deepheal worker` processes)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "point lease lifetime for local workers")
	poll := fs.Duration("poll", 100*time.Millisecond, "drain/queue poll interval")
	drainTimeout := fs.Duration("drain-timeout", 0, "hard ceiling on the whole drain (0 = none; stall detection via -stall-window is the liveness guard)")
	resume := fs.Bool("resume", false, "reattach to a campaign directory whose coordinator crashed: reload its manifest, keep every banked shard record, drain only the remainder")
	stallWindow := fs.Duration("stall-window", time.Minute, "declare the drain stalled after this long with no completions and no live worker heartbeat (<0 disables)")
	maxAttempts := fs.Int("max-attempts", 3, "fleet-wide crash budget per point before it is quarantined as poison (<0 disables)")
	respawnLocal := fs.Bool("respawn-local", false, "restart a local worker killed by an injected fault (chaos runs: lets one process exercise repeated crash/steal cycles)")
	retries := fs.Int("retries", 1, "attempts per point in the final assembly run before quarantine")
	timing := fs.Bool("timing", false, "after assembly, print the scheduling profile to stderr")
	faults := fs.String("faults", "", "fault-injection spec for chaos runs (see internal/faultinject)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault injector (-faults)")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal coordinate -dir <campaign-dir> [flags] [all | <experiment>...]\n\n"+
			"Publishes the experiments' points as a distributed work queue, drains it with\n"+
			"local and external workers, merges the per-worker journal shards and assembles\n"+
			"output byte-identical to a serial `deepheal` run.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		fs.Usage()
		return fmt.Errorf("coordinate: -dir is required")
	}
	var ids []string
	switch {
	case fs.NArg() == 0:
		// Like `all`: every registered experiment.
	case fs.NArg() == 1 && fs.Arg(0) == "all":
	default:
		ids = fs.Args()
	}
	resolved := ids
	if len(resolved) == 0 {
		resolved = experiments.IDs()
	}
	tasks, err := experiments.Plans(resolved...)
	if err != nil {
		return err
	}
	disarm, err := armFaults(*faults, *faultSeed)
	if err != nil {
		return err
	}
	defer disarm()
	var reg *obs.Registry
	if metrics.Enabled() {
		reg = obs.NewRegistry()
	}
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	campaign.EnableMetrics(reg)
	defer campaign.EnableMetrics(nil)
	dist.EnableMetrics(reg)
	defer dist.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return err
	}

	var m *dist.Manifest
	if *resume {
		var st dist.DrainState
		m, st, err = dist.Resume(*dir, resolved, tasks)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(os.Stderr, "coordinate: -resume set but %s has no manifest; publishing fresh\n", *dir)
			m = nil
		case err != nil:
			return err
		default:
			fmt.Fprintf(os.Stderr, "coordinate: resumed %s: %d/%d points already banked (%d failed, %d quarantined)\n",
				*dir, st.Completed, st.Total, st.Failed, st.Quarantined)
		}
	}
	if m == nil {
		if m, err = dist.Publish(*dir, resolved, tasks); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "coordinate: published %d points (%d experiments) to %s\n",
			len(m.Points), len(m.Experiments), *dir)
	}

	// Local workers get their own cancellation so a dead or stalled drain
	// can stop them without tearing down the outer context.
	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	workerErrs := make([]error, *localWorkers)
	for w := 0; w < *localWorkers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := fmt.Sprintf("%s-local%d", defaultCoordinatorID(), w)
			for gen := 0; ; gen++ {
				id := base
				if gen > 0 {
					id = fmt.Sprintf("%s-r%d", base, gen)
				}
				stats, err := dist.RunWorker(workerCtx, *dir, m, tasks, dist.WorkerOptions{
					ID:          id,
					LeaseTTL:    *leaseTTL,
					Poll:        *poll,
					MaxAttempts: *maxAttempts,
				})
				fmt.Fprintf(os.Stderr, "coordinate: local worker %s: %d computed, %d cache hits, %d stolen, %d failed, %d quarantined\n",
					id, stats.Completed, stats.CacheHits, stats.Stolen, stats.Failed, stats.Quarantined)
				if *respawnLocal && errors.Is(err, dist.ErrWorkerDied) && workerCtx.Err() == nil {
					fmt.Fprintf(os.Stderr, "coordinate: local worker %s died (injected); respawning\n", id)
					continue
				}
				workerErrs[w] = err
				return
			}
		}()
	}

	drainCtx := ctx
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(ctx, *drainTimeout)
		defer cancel()
	}
	drainErr := dist.WaitDrained(drainCtx, *dir, m, dist.DrainOptions{
		Poll:        *poll,
		StallWindow: *stallWindow,
		MaxAttempts: *maxAttempts,
		OnProgress: func(st dist.DrainState) {
			fmt.Fprintf(os.Stderr, "coordinate: %d/%d points done (%d failed, %d quarantined; workers %d live/%d suspect/%d dead; %.1f pts/s)\n",
				st.Completed+st.Failed+st.Quarantined, st.Total, st.Failed, st.Quarantined,
				st.Live, st.Suspect, len(st.Dead), st.RateHz)
		},
	})
	if drainErr != nil {
		stopWorkers()
	}
	wg.Wait()
	for w, werr := range workerErrs {
		if werr != nil && !errors.Is(werr, context.Canceled) && !errors.Is(werr, dist.ErrWorkerDied) {
			fmt.Fprintf(os.Stderr, "coordinate: local worker %d failed: %v\n", w, werr)
		}
	}
	if errors.Is(drainErr, dist.ErrCoordinatorDied) {
		// Crash mimicry: no merge, no assembly, no metrics flush. Everything
		// already banked — manifest, shards, markers, heartbeats — stays on
		// disk for `coordinate -resume`.
		fmt.Fprintf(os.Stderr, "coordinate: %v; rerun with -resume -dir %s to continue without re-running completed points\n", drainErr, *dir)
		return drainErr
	}
	if drainErr != nil {
		finishMetrics()
		return drainErr
	}

	st, err := dist.MergeShards(*dir)
	if err != nil {
		finishMetrics()
		return err
	}
	fmt.Fprintf(os.Stderr, "coordinate: merged %d shard(s): %d absorbed, %d duplicate, %d corrupt, %d torn\n",
		st.Shards, st.Absorbed, st.Duplicates, st.Corrupted, st.TornTails)
	poisoned, err := dist.QuarantinedFailures(*dir, m)
	if err != nil {
		finishMetrics()
		return err
	}
	if len(poisoned) > 0 {
		fmt.Fprintf(os.Stderr, "coordinate: %d poison point(s) quarantined by the fleet; the final run records them without executing\n", len(poisoned))
	}

	// Final assembly: an ordinary single-process campaign over the merged
	// journal. Every shard-completed point restores; anything missing —
	// failed on a worker, torn in a shard — recomputes here under the
	// normal retry/quarantine rules, except fleet-quarantined poison points,
	// which are recorded as quarantined outcomes without ever executing.
	if err := runCampaign(ctx, ids, campaignConfig{
		Quiet:       *quiet,
		OutDir:      *outDir,
		Workers:     1,
		ResumeDir:   *dir,
		Retries:     *retries,
		Timing:      *timing,
		Quarantined: poisoned,
	}); err != nil {
		finishMetrics()
		return err
	}
	return finishMetrics()
}

// defaultCoordinatorID names the coordinator's local worker shards.
func defaultCoordinatorID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "coord"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
