package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"deepheal/internal/core"
	"deepheal/internal/fleet"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
)

// runServe hosts the fleet service: an HTTP/JSON API over a fleet.Manager,
// with obs metrics baked into the same endpoint. On SIGINT/SIGTERM (ctx
// cancellation) it drains in-flight requests, writes the fleet checkpoint
// (-checkpoint) and exits 0; a restarted server restores the checkpoint and
// answers status queries byte-identically.
func runServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deepheal serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "fleet API listen address (port 0 picks a free one)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (useful with port 0)")
	workers := fs.Int("workers", 0, "shared stepping pool size (0 = GOMAXPROCS)")
	maxResident := fs.Int("max-resident", 0, "chips allowed to keep a live simulator (0 = unlimited); the least recently used excess is suspended to compact snapshots")
	checkpoint := fs.String("checkpoint", "", "fleet checkpoint file: restore from it on start, write it on shutdown")
	drain := fs.Duration("drain-timeout", 10*time.Second, "deadline for draining in-flight HTTP requests on shutdown")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	var prof obsflag.Profile
	prof.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal serve [flags]\n\n"+
			"Serves the chip-fleet API; see GET /v1/meta for policies and corners.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected argument %q", fs.Arg(0))
	}
	stopProfiles, err := prof.Start()
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer stopProfiles()

	// Metrics are part of the fleet API (GET /metrics), so the registry is
	// unconditional; -metrics-addr/-metrics-out still work on top of it.
	reg := obs.NewRegistry()
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	fleet.EnableMetrics(reg)
	defer fleet.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	// Listen before restoring: the socket (and -addr-file) appear
	// immediately, and /readyz answers 503 "restoring checkpoint" until the
	// fleet is whole — so a supervisor sees the process up right away while
	// scripts that diff state know to wait for readiness.
	m := fleet.NewManager(fleet.Options{Workers: *workers, MaxResident: *maxResident})
	defer m.Close()
	m.SetNotReady("restoring checkpoint")
	srv, err := obs.StartHTTPServer(*addr, m.Handler(reg))
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "fleet API on http://%s (policies and corners: GET /v1/meta)\n", srv.Addr())
	if *addrFile != "" {
		if err := writeFileAtomic(*addrFile, []byte(srv.Addr()+"\n")); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}

	if *checkpoint != "" {
		data, err := os.ReadFile(*checkpoint)
		switch {
		case err == nil:
			if err := m.Restore(data); err != nil {
				return fmt.Errorf("serve: restore fleet from %s: %w", *checkpoint, err)
			}
			fmt.Fprintf(os.Stderr, "restored %d chip(s) from %s\n", m.Len(), *checkpoint)
		case errors.Is(err, os.ErrNotExist):
			// First start: the file appears on the first shutdown.
		default:
			return err
		}
	}
	m.SetReady()

	<-ctx.Done()
	m.SetNotReady("draining for shutdown")
	fmt.Fprintln(os.Stderr, "serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "serve: drain incomplete (%v), closing\n", err)
		srv.Close()
	}
	cancel()

	if *checkpoint != "" {
		blob, err := m.Checkpoint()
		if err != nil {
			return fmt.Errorf("serve: checkpoint fleet: %w", err)
		}
		if err := writeFileAtomic(*checkpoint, blob); err != nil {
			return fmt.Errorf("serve: checkpoint fleet: %w", err)
		}
		fmt.Fprintf(os.Stderr, "serve: wrote fleet checkpoint (%d chips, %d bytes) to %s\n",
			m.Len(), len(blob), *checkpoint)
	}
	return finishMetrics()
}

// writeFileAtomic writes data via a temp file + rename so a crash mid-write
// never leaves a truncated file behind.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
