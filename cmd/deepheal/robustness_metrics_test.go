package main

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"deepheal/internal/campaign"
	"deepheal/internal/faultinject"
	"deepheal/internal/obs"
	"deepheal/internal/thermal"
)

// TestRobustnessMetricsExposition moves the three degraded-mode series —
// point retries, quarantined points, solver fallbacks — through real failure
// paths and asserts they surface in both the Prometheus scrape and the JSON
// snapshot.
func TestRobustnessMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	campaign.EnableMetrics(reg)
	thermal.EnableMetrics(reg)
	t.Cleanup(func() {
		campaign.EnableMetrics(nil)
		thermal.EnableMetrics(nil)
	})

	// One point errors on both of its attempts (occurrences 1 and 2 of the
	// point-error site): attempt 1 fails and is retried (+1 retry), attempt
	// 2 fails and exhausts the budget (+1 quarantined). The thermal grid's
	// first CG solve diverges, forcing the steady-state fallback (+1).
	inj, err := faultinject.New(7, map[faultinject.Site]faultinject.Schedule{
		faultinject.SitePointError: {Occurrences: []uint64{1, 2}},
		faultinject.SiteCGDiverge:  {Occurrences: []uint64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(inj)
	t.Cleanup(faultinject.Disable)

	task := campaign.Task{ID: "chaos"}
	for _, key := range []string{"chaos/p0", "chaos/p1"} {
		task.Points = append(task.Points, campaign.NewPoint(key, "",
			func(context.Context) (*int, error) { v := 1; return &v, nil }))
	}
	task.Assemble = func(results []any) (any, error) { return len(results), nil }
	outcomes, runErr := campaign.Run(context.Background(), []campaign.Task{task},
		campaign.Options{Workers: 1, Retry: campaign.RetryPolicy{MaxAttempts: 2}})
	if !errors.Is(runErr, campaign.ErrQuarantined) {
		t.Fatalf("campaign error = %v, want ErrQuarantined", runErr)
	}
	if q := campaign.QuarantinedPoints(outcomes); len(q) != 1 {
		t.Fatalf("%d quarantined points, want 1", len(q))
	}

	g := thermal.MustNewGrid(4, 4, thermal.DefaultConfig())
	power := make([]float64, 16)
	power[5] = 2.0
	if err := g.Step(power, 0.01); err != nil {
		t.Fatalf("thermal step did not fall back: %v", err)
	}

	// Prometheus exposition.
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()
	for name, want := range map[string]float64{
		"deepheal_campaign_point_retries_total": 1,
		"deepheal_campaign_points_quarantined":  1,
		"deepheal_solver_fallbacks_total":       1,
	} {
		got, err := scrapeMetric(ts.URL+"/metrics", name)
		if err != nil {
			t.Errorf("prometheus: %v", err)
			continue
		}
		if got != want {
			t.Errorf("prometheus %s = %v, want %v", name, got, want)
		}
	}

	// JSON exposition.
	out := filepath.Join(t.TempDir(), "metrics.json")
	if err := reg.Snapshot().WriteFile(out); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadSnapshotFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["deepheal_campaign_point_retries_total"]; got != 1 {
		t.Errorf("json deepheal_campaign_point_retries_total = %d, want 1", got)
	}
	if got := snap.Gauges["deepheal_campaign_points_quarantined"]; got != 1 {
		t.Errorf("json deepheal_campaign_points_quarantined = %v, want 1", got)
	}
	if got := snap.Counters["deepheal_solver_fallbacks_total"]; got != 1 {
		t.Errorf("json deepheal_solver_fallbacks_total = %d, want 1", got)
	}
}
