package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing selection accepted")
	}
}

func TestRunQuietSingle(t *testing.T) {
	if err := run([]string{"-q", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithOutputDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-q", "-o", dir, "table1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); err != nil {
		t.Errorf("missing table1.txt: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1_recovery.tsv")); err != nil {
		t.Errorf("missing table1_recovery.tsv: %v", err)
	}
}
