package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"deepheal/internal/core"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing selection accepted")
	}
}

func TestRunQuietSingle(t *testing.T) {
	if err := run([]string{"-q", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithOutputDir(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-q", "-o", dir, "table1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); err != nil {
		t.Errorf("missing table1.txt: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1_recovery.tsv")); err != nil {
		t.Errorf("missing table1_recovery.tsv: %v", err)
	}
}

func TestRunSimShortLifetime(t *testing.T) {
	if err := run([]string{"sim", "-steps", "30", "-policy", "deep-healing", "-workers", "2", "-progress"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimRejectsBadFlags(t *testing.T) {
	if err := run([]string{"sim", "-policy", "nope", "-steps", "5"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"sim", "extra"}); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run([]string{"sim", "-checkpoint", "x", "-checkpoint-every", "0", "-steps", "5"}); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
}

func TestRunSimCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := run([]string{"sim", "-steps", "25", "-checkpoint", ckpt, "-checkpoint-every", "10"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("finished run left checkpoint behind (stat err = %v)", err)
	}

	// Interrupted run: save a mid-lifetime snapshot by hand, then let the
	// CLI resume from it and finish the horizon.
	cfg := core.DefaultConfig()
	cfg.Steps = 25
	sim, err := core.NewSimulator(cfg, core.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSteps(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sim", "-steps", "25", "-checkpoint", ckpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("resumed run left checkpoint behind (stat err = %v)", err)
	}

	// A snapshot from a different system must be refused, not half-applied.
	if err := os.WriteFile(ckpt, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"sim", "-steps", "30", "-checkpoint", ckpt}); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}
