package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"deepheal/internal/core"
)

func TestRunList(t *testing.T) {
	if err := run(context.Background(), []string{"list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), []string{"nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunNoArgs(t *testing.T) {
	if err := run(context.Background(), nil); err == nil {
		t.Error("missing selection accepted")
	}
}

func TestRunQuietSingle(t *testing.T) {
	if err := run(context.Background(), []string{"-q", "table1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithOutputDir(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"-q", "-o", dir, "table1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1.txt")); err != nil {
		t.Errorf("missing table1.txt: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table1_recovery.tsv")); err != nil {
		t.Errorf("missing table1_recovery.tsv: %v", err)
	}
}

func TestRunInterspersedFlags(t *testing.T) {
	// Flags after the experiment id used to fail with `unknown experiment "-q"`.
	if err := run(context.Background(), []string{"table1", "-q"}); err != nil {
		t.Fatalf("flag after experiment id rejected: %v", err)
	}
	dir := t.TempDir()
	if err := run(context.Background(), []string{"table1", "-q", "-o", dir, "fig4"}); err != nil {
		t.Fatalf("mixed ids and flags rejected: %v", err)
	}
	for _, name := range []string{"table1.txt", "fig4.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	if err := run(context.Background(), []string{"all", "table1"}); err == nil {
		t.Error("trailing argument after \"all\" accepted")
	}
}

func TestRunParallelOutputMatchesSerial(t *testing.T) {
	ids := []string{"table1", "fig4", "fig5"}
	read := func(dir string) map[string]string {
		t.Helper()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files := make(map[string]string, len(entries))
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[e.Name()] = string(data)
		}
		return files
	}

	serialDir, parallelDir := t.TempDir(), t.TempDir()
	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	args = append([]string{"-q", "-o", parallelDir, "-parallel", "0"}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	serial, parallel := read(serialDir), read(parallelDir)
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("file sets differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for name, want := range serial {
		if got, ok := parallel[name]; !ok {
			t.Errorf("parallel run missing %s", name)
		} else if got != want {
			t.Errorf("%s: parallel output differs from serial", name)
		}
	}
}

func TestRunResumeRestoresJournal(t *testing.T) {
	campDir := t.TempDir()
	if err := run(context.Background(), []string{"-q", "-resume", campDir, "table1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(campDir, "journal.jsonl")); err != nil {
		t.Fatalf("missing journal: %v", err)
	}
	if _, err := os.Stat(filepath.Join(campDir, "points.json")); err != nil {
		t.Fatalf("missing per-point stats artifact: %v", err)
	}

	// Second invocation must restore all four Table I points instead of
	// re-running them, and widening the selection only computes the new work.
	outDir := t.TempDir()
	if err := run(context.Background(), []string{"-q", "-resume", campDir, "-o", outDir, "table1", "fig4"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(campDir, "points.json"))
	if err != nil {
		t.Fatal(err)
	}
	var stats []struct {
		Task   string `json:"task"`
		Points []struct {
			Source string `json:"source"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatal(err)
	}
	for _, task := range stats {
		if task.Task != "table1" {
			continue
		}
		for i, p := range task.Points {
			if p.Source != "journal" {
				t.Errorf("table1 point %d re-ran on resume (source %q)", i, p.Source)
			}
		}
	}
}

func TestRunSimShortLifetime(t *testing.T) {
	if err := run(context.Background(), []string{"sim", "-steps", "30", "-policy", "deep-healing", "-workers", "2", "-progress"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"sim", "-policy", "nope", "-steps", "5"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run(context.Background(), []string{"sim", "extra"}); err == nil {
		t.Error("positional argument accepted")
	}
	if err := run(context.Background(), []string{"sim", "-checkpoint", "x", "-checkpoint-every", "0", "-steps", "5"}); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
}

func TestRunSimCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := run(context.Background(), []string{"sim", "-steps", "25", "-checkpoint", ckpt, "-checkpoint-every", "10"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("finished run left checkpoint behind (stat err = %v)", err)
	}

	// Interrupted run: save a mid-lifetime snapshot by hand, then let the
	// CLI resume from it and finish the horizon.
	cfg := core.DefaultConfig()
	cfg.Steps = 25
	sim, err := core.NewSimulator(cfg, core.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSteps(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	snap, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"sim", "-steps", "25", "-checkpoint", ckpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Errorf("resumed run left checkpoint behind (stat err = %v)", err)
	}

	// A snapshot from a different system must be refused, not half-applied.
	if err := os.WriteFile(ckpt, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"sim", "-steps", "30", "-checkpoint", ckpt}); err == nil {
		t.Error("mismatched checkpoint accepted")
	}
}
