package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepheal/internal/campaign"
	"deepheal/internal/campaign/dist"
	"deepheal/internal/obs"
)

// readOutputs collects an -o artifact directory as name → contents.
func readOutputs(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	return files
}

// assertSameOutputs compares two artifact directories byte for byte. Stdout
// carries wall-clock timings, so the -o files are the byte-identical surface.
func assertSameOutputs(t *testing.T, serialDir, distDir string) {
	t.Helper()
	serial, dist := readOutputs(t, serialDir), readOutputs(t, distDir)
	if len(serial) == 0 || len(serial) != len(dist) {
		t.Fatalf("file sets differ: serial %d, distributed %d", len(serial), len(dist))
	}
	for name, want := range serial {
		if got, ok := dist[name]; !ok {
			t.Errorf("distributed run missing %s", name)
		} else if got != want {
			t.Errorf("%s: distributed output differs from serial", name)
		}
	}
}

func TestCoordinateMatchesSerial(t *testing.T) {
	ids := []string{"table1", "fig4"}
	serialDir, distDir := t.TempDir(), t.TempDir()
	campDir := filepath.Join(t.TempDir(), "camp")

	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	args = append([]string{"coordinate", "-dir", campDir, "-local-workers", "2", "-q", "-o", distDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	assertSameOutputs(t, serialDir, distDir)

	// The campaign dir must hold the distributed artifacts: the manifest,
	// one shard per local worker, and the merged canonical journal.
	if _, err := os.Stat(filepath.Join(campDir, "manifest.json")); err != nil {
		t.Errorf("missing manifest: %v", err)
	}
	shards, err := filepath.Glob(filepath.Join(campDir, "shards", "*.jsonl"))
	if err != nil || len(shards) != 2 {
		t.Errorf("want 2 worker shards, got %d (err %v)", len(shards), err)
	}
	if _, err := os.Stat(filepath.Join(campDir, "journal.jsonl")); err != nil {
		t.Errorf("missing merged journal: %v", err)
	}
}

func TestCoordinateSurvivesWorkerDeath(t *testing.T) {
	ids := []string{"table1", "fig4"}
	serialDir, distDir := t.TempDir(), t.TempDir()
	campDir := filepath.Join(t.TempDir(), "camp")

	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	// One of the two local workers dies (injected) after its second computed
	// point, abandoning an unrecorded result and a live lease. The survivor
	// steals the lease once the short TTL expires and the merged output must
	// still be byte-identical.
	args = append([]string{
		"coordinate", "-dir", campDir, "-local-workers", "2",
		"-lease-ttl", "500ms", "-poll", "50ms",
		"-faults", "worker-die:occ=2", "-fault-seed", "7",
		"-q", "-o", distDir,
	}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	assertSameOutputs(t, serialDir, distDir)
}

func TestCoordinateResumeSkipsCompletedPoints(t *testing.T) {
	// A second coordinate over the same dir must restore everything from the
	// merged journal: publish finds the same hashes, workers see every point
	// already complete, and assembly restores instead of recomputing.
	campDir := filepath.Join(t.TempDir(), "camp")
	if err := run(context.Background(), []string{"coordinate", "-dir", campDir, "-q", "table1"}); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(campDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"coordinate", "-dir", campDir, "-q", "table1"}); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(campDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("re-run grew the canonical journal: %d → %d bytes", before.Size(), after.Size())
	}
}

func TestDistVerbValidation(t *testing.T) {
	if err := run(context.Background(), []string{"coordinate"}); err == nil {
		t.Error("coordinate without -dir accepted")
	}
	if err := run(context.Background(), []string{"worker"}); err == nil {
		t.Error("worker without -dir accepted")
	}
	if err := run(context.Background(), []string{"worker", "-dir", t.TempDir(), "table1"}); err == nil {
		t.Error("worker with positional experiment accepted")
	}
	if err := run(context.Background(), []string{"coordinate", "-dir", filepath.Join(t.TempDir(), "c"), "nope"}); err == nil {
		t.Error("coordinate with unknown experiment accepted")
	}
}

// TestCoordinateKillAndResume kills the coordinator mid-drain with the
// injected fault, asserts the dedicated exit classification, then resumes
// the same directory: the second coordinator must restore every banked
// point (resume metric), execute only the remainder, and emit output
// byte-identical to a serial run.
func TestCoordinateKillAndResume(t *testing.T) {
	ids := []string{"table1", "fig4"}
	serialDir, distDir := t.TempDir(), t.TempDir()
	campDir := filepath.Join(t.TempDir(), "camp")
	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	// First life: the coordinator dies on the second drain progress change —
	// after at least one point is banked in a shard, before the merge.
	args = append([]string{
		"coordinate", "-dir", campDir, "-local-workers", "2", "-poll", "20ms",
		"-faults", "coordinator-die:occ=2", "-q", "-o", t.TempDir(),
	}, ids...)
	err := run(context.Background(), args)
	if !errors.Is(err, dist.ErrCoordinatorDied) {
		t.Fatalf("killed coordinate returned %v, want ErrCoordinatorDied", err)
	}
	if got := exitCode(err); got != exitCoordinatorDied {
		t.Fatalf("exit code %d, want %d", got, exitCoordinatorDied)
	}
	if _, err := os.Stat(filepath.Join(campDir, "journal.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("crashed coordinator must not have merged: journal stat err=%v", err)
	}
	shards, err := filepath.Glob(filepath.Join(campDir, "shards", "*.jsonl"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards banked before the crash (err %v)", err)
	}

	// Second life: -resume reloads the manifest and finishes the job.
	metricsOut := filepath.Join(t.TempDir(), "metrics.json")
	args = append([]string{
		"coordinate", "-dir", campDir, "-resume", "-local-workers", "2",
		"-poll", "20ms", "-metrics-out", metricsOut, "-q", "-o", distDir,
	}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	assertSameOutputs(t, serialDir, distDir)

	m, err := dist.LoadManifest(campDir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadSnapshotFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	restored := snap.Counters["deepheal_dist_resume_restored_total"]
	computed := snap.Counters["deepheal_dist_points_completed_total"]
	if restored == 0 {
		t.Error("resume restored no points; the crash-resume path never engaged")
	}
	if computed >= uint64(len(m.Points)) {
		t.Errorf("resumed run computed %d of %d points — banked work was re-executed", computed, len(m.Points))
	}
	if restored+computed < uint64(len(m.Points)) {
		t.Errorf("restored %d + computed %d < %d manifest points", restored, computed, len(m.Points))
	}
}

// TestCoordinatePoisonPointQuarantine targets one point with a worker-die
// fault: every worker that leases table1/no3 dies. With -respawn-local the
// single local worker keeps coming back, burns the 2-attempt budget, and
// the third incarnation quarantines the point. The run must end with the
// quarantine exit semantics, name the point on stderr (checked via the
// error), and still produce byte-identical output for the healthy
// experiment.
func TestCoordinatePoisonPointQuarantine(t *testing.T) {
	ids := []string{"table1", "fig4"}
	serialDir, distDir := t.TempDir(), t.TempDir()
	campDir := filepath.Join(t.TempDir(), "camp")
	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	args = append([]string{
		"coordinate", "-dir", campDir, "-local-workers", "1", "-respawn-local",
		"-max-attempts", "2", "-lease-ttl", "200ms", "-poll", "20ms",
		"-faults", "worker-die:key=table1/no3",
		"-q", "-o", distDir,
	}, ids...)
	err := run(context.Background(), args)
	if !errors.Is(err, campaign.ErrQuarantined) {
		t.Fatalf("poisoned coordinate returned %v, want ErrQuarantined", err)
	}
	if got := exitCode(err); got != exitQuarantine {
		t.Fatalf("exit code %d, want %d", got, exitQuarantine)
	}

	// The fleet recorded the quarantine with its attempt history.
	m, err := dist.LoadManifest(campDir)
	if err != nil {
		t.Fatal(err)
	}
	poisoned, err := dist.QuarantinedFailures(campDir, m)
	if err != nil || len(poisoned) != 1 {
		t.Fatalf("QuarantinedFailures = %v (err %v), want exactly one", poisoned, err)
	}

	// The healthy experiment's artifacts are byte-identical to serial; the
	// poisoned experiment wrote nothing (its task failed assembly).
	serial, dst := readOutputs(t, serialDir), readOutputs(t, distDir)
	for name, want := range serial {
		if strings.HasPrefix(name, "table1") {
			if _, ok := dst[name]; ok {
				t.Errorf("poisoned experiment still wrote %s", name)
			}
			continue
		}
		if got, ok := dst[name]; !ok || got != want {
			t.Errorf("healthy artifact %s missing or differs (present=%v)", name, ok)
		}
	}
}
