package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// readOutputs collects an -o artifact directory as name → contents.
func readOutputs(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	return files
}

// assertSameOutputs compares two artifact directories byte for byte. Stdout
// carries wall-clock timings, so the -o files are the byte-identical surface.
func assertSameOutputs(t *testing.T, serialDir, distDir string) {
	t.Helper()
	serial, dist := readOutputs(t, serialDir), readOutputs(t, distDir)
	if len(serial) == 0 || len(serial) != len(dist) {
		t.Fatalf("file sets differ: serial %d, distributed %d", len(serial), len(dist))
	}
	for name, want := range serial {
		if got, ok := dist[name]; !ok {
			t.Errorf("distributed run missing %s", name)
		} else if got != want {
			t.Errorf("%s: distributed output differs from serial", name)
		}
	}
}

func TestCoordinateMatchesSerial(t *testing.T) {
	ids := []string{"table1", "fig4"}
	serialDir, distDir := t.TempDir(), t.TempDir()
	campDir := filepath.Join(t.TempDir(), "camp")

	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	args = append([]string{"coordinate", "-dir", campDir, "-local-workers", "2", "-q", "-o", distDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	assertSameOutputs(t, serialDir, distDir)

	// The campaign dir must hold the distributed artifacts: the manifest,
	// one shard per local worker, and the merged canonical journal.
	if _, err := os.Stat(filepath.Join(campDir, "manifest.json")); err != nil {
		t.Errorf("missing manifest: %v", err)
	}
	shards, err := filepath.Glob(filepath.Join(campDir, "shards", "*.jsonl"))
	if err != nil || len(shards) != 2 {
		t.Errorf("want 2 worker shards, got %d (err %v)", len(shards), err)
	}
	if _, err := os.Stat(filepath.Join(campDir, "journal.jsonl")); err != nil {
		t.Errorf("missing merged journal: %v", err)
	}
}

func TestCoordinateSurvivesWorkerDeath(t *testing.T) {
	ids := []string{"table1", "fig4"}
	serialDir, distDir := t.TempDir(), t.TempDir()
	campDir := filepath.Join(t.TempDir(), "camp")

	args := append([]string{"-q", "-o", serialDir}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}
	// One of the two local workers dies (injected) after its second computed
	// point, abandoning an unrecorded result and a live lease. The survivor
	// steals the lease once the short TTL expires and the merged output must
	// still be byte-identical.
	args = append([]string{
		"coordinate", "-dir", campDir, "-local-workers", "2",
		"-lease-ttl", "500ms", "-poll", "50ms",
		"-faults", "worker-die:occ=2", "-fault-seed", "7",
		"-q", "-o", distDir,
	}, ids...)
	if err := run(context.Background(), args); err != nil {
		t.Fatal(err)
	}

	assertSameOutputs(t, serialDir, distDir)
}

func TestCoordinateResumeSkipsCompletedPoints(t *testing.T) {
	// A second coordinate over the same dir must restore everything from the
	// merged journal: publish finds the same hashes, workers see every point
	// already complete, and assembly restores instead of recomputing.
	campDir := filepath.Join(t.TempDir(), "camp")
	if err := run(context.Background(), []string{"coordinate", "-dir", campDir, "-q", "table1"}); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(filepath.Join(campDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"coordinate", "-dir", campDir, "-q", "table1"}); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(campDir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Errorf("re-run grew the canonical journal: %d → %d bytes", before.Size(), after.Size())
	}
}

func TestDistVerbValidation(t *testing.T) {
	if err := run(context.Background(), []string{"coordinate"}); err == nil {
		t.Error("coordinate without -dir accepted")
	}
	if err := run(context.Background(), []string{"worker"}); err == nil {
		t.Error("worker without -dir accepted")
	}
	if err := run(context.Background(), []string{"worker", "-dir", t.TempDir(), "table1"}); err == nil {
		t.Error("worker with positional experiment accepted")
	}
	if err := run(context.Background(), []string{"coordinate", "-dir", filepath.Join(t.TempDir(), "c"), "nope"}); err == nil {
		t.Error("coordinate with unknown experiment accepted")
	}
}
