package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"deepheal/internal/core"
	"deepheal/internal/obs"
)

// scrapeMetric fetches url and returns the value of the named series, or an
// error when the series is absent.
func scrapeMetric(url, name string) (float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
	}
	return 0, fmt.Errorf("series %s not in scrape:\n%s", name, body)
}

// TestSimLiveMetrics proves the live-observability loop end to end: while a
// simulation steps, counters scraped over HTTP move, and the kernel-cache
// and CG-solver series from the instrumented internals are visible.
func TestSimLiveMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)

	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	cfg := core.DefaultConfig()
	cfg.Steps = 10
	sim, err := core.NewSimulator(cfg, core.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSteps(context.Background(), 4); err != nil {
		t.Fatal(err)
	}
	mid, err := scrapeMetric(ts.URL+"/metrics", "deepheal_sim_steps_total")
	if err != nil {
		t.Fatal(err)
	}
	if mid != 4 {
		t.Errorf("after 4 steps, scraped steps_total = %v, want 4", mid)
	}
	if err := sim.RunSteps(context.Background(), 6); err != nil {
		t.Fatal(err)
	}
	final, err := scrapeMetric(ts.URL+"/metrics", "deepheal_sim_steps_total")
	if err != nil {
		t.Fatal(err)
	}
	if final != 10 {
		t.Errorf("after 10 steps, scraped steps_total = %v, want 10", final)
	}

	// The internals wired through EnableMetrics show up in the same scrape:
	// every step consults the kernel cache and settles the thermal grid.
	solves, err := scrapeMetric(ts.URL+"/metrics", "deepheal_cg_solves_total")
	if err != nil {
		t.Fatal(err)
	}
	if solves <= 0 {
		t.Errorf("cg solves = %v, want > 0", solves)
	}
	hits, errH := scrapeMetric(ts.URL+"/metrics", "deepheal_bti_kernel_hits_total")
	misses, errM := scrapeMetric(ts.URL+"/metrics", "deepheal_bti_kernel_misses_total")
	if errH != nil || errM != nil {
		t.Fatalf("kernel series missing: %v / %v", errH, errM)
	}
	if hits+misses <= 0 {
		t.Errorf("kernel lookups = %v, want > 0", hits+misses)
	}
}

// TestRunSimMetricsOut runs the CLI with -metrics-out and checks the JSON
// snapshot carries the kernel-cache and CG-solver series.
func TestRunSimMetricsOut(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	if err := run(context.Background(), []string{"sim", "-steps", "8", "-metrics-out", out}); err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ReadSnapshotFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Counters["deepheal_sim_steps_total"]; got != 8 {
		t.Errorf("steps_total = %d, want 8", got)
	}
	for _, name := range []string{
		"deepheal_bti_kernel_hits_total",
		"deepheal_bti_kernel_misses_total",
		"deepheal_cg_solves_total",
		"deepheal_cg_iterations_total",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("snapshot missing counter %s", name)
		}
	}
	if _, ok := snap.Gauges["deepheal_bti_kernel_resident_floats"]; !ok {
		t.Error("snapshot missing gauge deepheal_bti_kernel_resident_floats")
	}
	if h, ok := snap.Histograms["deepheal_sim_step_seconds"]; !ok {
		t.Error("snapshot missing histogram deepheal_sim_step_seconds")
	} else if h.Count != 8 {
		t.Errorf("step histogram count = %d, want 8", h.Count)
	}
}

// TestRunSimMetricsAddr exercises the -metrics-addr flag path: the server
// must bind, serve for the duration of the run and shut down cleanly.
func TestRunSimMetricsAddr(t *testing.T) {
	if err := run(context.Background(), []string{"sim", "-steps", "5", "-metrics-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"sim", "-steps", "5", "-metrics-addr", "not-an-address"}); err == nil {
		t.Error("unbindable metrics address accepted")
	}
}
