package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"deepheal/internal/bench"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
)

// runBench executes the tracked benchmark set and writes the trajectory
// report. With -baseline it also gates: any tracked benchmark that slowed
// past -factor fails the command, which is how CI pins the perf work in this
// repo to the committed BENCH_PR2.json.
func runBench(args []string) error {
	fs := flag.NewFlagSet("deepheal bench", flag.ContinueOnError)
	out := fs.String("o", "BENCH_PR2.json", "write the JSON report here (empty = don't write)")
	baseline := fs.String("baseline", "", "compare against this JSON report and fail on regressions")
	factor := fs.Float64("factor", 2, "allowed ns/op growth factor vs the baseline")
	minNs := fs.Float64("min-ns", bench.MinGateNs, "skip gating benchmarks with baselines under this many ns/op (timer noise)")
	pattern := fs.String("bench", ".", "benchmark name pattern (go test -bench)")
	benchtime := fs.String("benchtime", "1000x", "per-benchmark time or iteration count (go test -benchtime)")
	verbose := fs.Bool("v", false, "stream raw go test output while running")
	strict := fs.Bool("strict", false, "fail when baseline benchmarks are missing from the current run")
	metricsOut := fs.String("metrics-out", "", "write a JSON snapshot of harness metrics here")
	// bench does not profile in-process: the paths are forwarded to the
	// `go test` child (which requires exactly one package).
	var prof obsflag.Profile
	prof.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal bench [flags] [package...]\n\n"+
			"Runs the tracked benchmark set (default: the numerical-kernel and\n"+
			"simulator packages) and writes a machine-readable trajectory report.\n"+
			"Run it from the repository root: it shells out to `go test`.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sink io.Writer
	if *verbose {
		sink = os.Stderr
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	rep, err := bench.Run(bench.Options{
		Packages:   fs.Args(),
		Pattern:    *pattern,
		Benchtime:  *benchtime,
		Stdout:     sink,
		CPUProfile: prof.CPU,
		MemProfile: prof.Mem,
		Metrics:    reg,
	})
	if err != nil {
		return err
	}
	if len(rep.Results) == 0 {
		return fmt.Errorf("bench: no benchmarks matched %q", *pattern)
	}
	for _, r := range rep.Results {
		fmt.Printf("%-60s %14.1f ns/op %10d B/op %8d allocs/op\n", r.Key(), r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(rep.Results), *out)
	}

	if *baseline == "" {
		return writeBenchMetrics(reg, *metricsOut)
	}
	base, err := bench.ReadFile(*baseline)
	if err != nil {
		return err
	}
	regs, stats := bench.Compare(base, rep, *factor, *minNs)
	fmt.Printf("compared %d benchmarks against %s (factor %.2gx, floor %.0f ns; %d below floor, not gated)\n",
		stats.Compared, *baseline, *factor, *minNs, stats.SkippedBelowFloor)
	for _, key := range stats.Missing {
		fmt.Fprintf(os.Stderr, "WARNING: baseline benchmark %s missing from current run\n", key)
	}
	if reg != nil {
		reg.Counter("deepheal_bench_compared_total", "baseline benchmarks matched in the current run").Add(uint64(stats.Compared))
		reg.Counter("deepheal_bench_below_floor_total", "matched benchmarks under the noise floor (not gated)").Add(uint64(stats.SkippedBelowFloor))
		reg.Counter("deepheal_bench_missing_total", "baseline benchmarks missing from the current run").Add(uint64(len(stats.Missing)))
		reg.Counter("deepheal_bench_regressions_total", "benchmarks past the allowed growth factor").Add(uint64(len(regs)))
	}
	if err := writeBenchMetrics(reg, *metricsOut); err != nil {
		return err
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "REGRESSION", r)
	}
	if *strict && len(stats.Missing) > 0 {
		return fmt.Errorf("bench: %d baseline benchmark(s) missing from current run (-strict)", len(stats.Missing))
	}
	if len(regs) > 0 {
		return fmt.Errorf("bench: %d benchmark(s) regressed more than %.2gx", len(regs), *factor)
	}
	return nil
}

// writeBenchMetrics dumps the harness registry as a JSON snapshot. A nil
// registry (no -metrics-out) is a no-op.
func writeBenchMetrics(reg *obs.Registry, path string) error {
	if reg == nil || path == "" {
		return nil
	}
	snap := reg.Snapshot()
	if err := snap.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote harness metrics to %s\n", path)
	return nil
}
