package main

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startServe runs the serve subcommand in-process against a free port and
// returns its base URL plus a shutdown function that simulates SIGTERM
// (cancels the context, as withSignalHandling would) and waits for the
// clean exit.
func startServe(t *testing.T, extra ...string) (base string, shutdown func()) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-addr-file", addrFile}, extra...)
	go func() { done <- run(ctx, args) }()

	deadline := time.Now().Add(10 * time.Second)
	for {
		data, err := os.ReadFile(addrFile)
		if err == nil {
			base = "http://" + strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("serve did not come up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve exited with error: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("serve did not exit after shutdown signal")
		}
	}
}

// do issues one request and returns the response body.
func do(t *testing.T, method, url, body string, want int) string {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d (body %s)", method, url, resp.StatusCode, want, data)
	}
	return string(data)
}

// TestServeCheckpointRestartIdentical is the serve end-to-end: register
// chips over HTTP, step them, query, SIGTERM (checkpoint), restart from
// the checkpoint and verify the restarted service answers the same queries
// byte-identically.
func TestServeCheckpointRestartIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "fleet.ckpt")
	base, shutdown := startServe(t, "-checkpoint", ckpt, "-workers", "2")

	do(t, "GET", base+"/healthz", "", http.StatusOK)
	do(t, "POST", base+"/v1/chips", `{"id": "e2e-0", "steps": 50, "seed": 11}`, http.StatusCreated)
	do(t, "POST", base+"/v1/chips",
		`{"id": "e2e-1", "steps": 50, "seed": 12, "corner": "fast", "policy": "no-recovery"}`,
		http.StatusCreated)
	do(t, "POST", base+"/v1/step", `{"steps": 8}`, http.StatusOK)
	do(t, "POST", base+"/v1/chips/e2e-0/step", `{"steps": 3}`, http.StatusOK)

	queries := []string{"/v1/chips", "/v1/chips/e2e-0", "/v1/chips/e2e-1", "/v1/chips/e2e-1/schedule"}
	before := make([]string, len(queries))
	for i, q := range queries {
		before[i] = do(t, "GET", base+q, "", http.StatusOK)
	}
	if !strings.Contains(before[1], `"step": 11`) {
		t.Fatalf("chip e2e-0 not at step 11:\n%s", before[1])
	}
	shutdown()
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("shutdown left no checkpoint: %v", err)
	}

	base2, shutdown2 := startServe(t, "-checkpoint", ckpt, "-workers", "2")
	defer shutdown2()
	for i, q := range queries {
		after := do(t, "GET", base2+q, "", http.StatusOK)
		if after != before[i] {
			t.Errorf("restored fleet answers %s differently:\nbefore: %s\nafter:  %s", q, before[i], after)
		}
	}

	// The restored fleet keeps evolving: stepping must work and advance.
	stepped := do(t, "POST", base2+"/v1/chips/e2e-0/step", `{"steps": 1}`, http.StatusOK)
	if !strings.Contains(stepped, `"step": 12`) {
		t.Errorf("restored chip did not advance:\n%s", stepped)
	}
}

// TestServeMetricsExposed checks the obs metrics ride the fleet endpoint.
func TestServeMetricsExposed(t *testing.T) {
	base, shutdown := startServe(t)
	defer shutdown()
	do(t, "POST", base+"/v1/chips", `{"id": "m0", "steps": 20}`, http.StatusCreated)
	do(t, "POST", base+"/v1/step", `{"steps": 2}`, http.StatusOK)
	expo := do(t, "GET", base+"/metrics", "", http.StatusOK)
	for _, want := range []string{
		"deepheal_fleet_chips 1",
		"deepheal_fleet_steps_total 2",
		"deepheal_fleet_batch_seconds_count 1",
		"deepheal_sim_steps_total 2", // core cascade is live too
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestServeRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"serve", "-addr"}); err == nil {
		t.Error("dangling -addr accepted")
	}
	if err := run(context.Background(), []string{"serve", "positional"}); err == nil {
		t.Error("positional argument accepted")
	}
}
