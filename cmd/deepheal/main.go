// Command deepheal regenerates the paper's tables and figures from the
// calibrated simulators.
//
// Usage:
//
//	deepheal list              # show available experiment ids
//	deepheal all               # run every experiment
//	deepheal table1 fig5 ...   # run specific experiments
//	deepheal sim [flags]       # run one policy simulation directly
//	deepheal bench [flags]     # run tracked benchmarks, emit/compare JSON
//
// Each experiment prints its paper-style table or series followed by a
// summary comparing the simulated result against the paper's anchors.
// The sim subcommand drives a single engine simulation with progress
// reporting and checkpoint/resume; see `deepheal sim -h`. The bench
// subcommand records the benchmark trajectory (see `deepheal bench -h`);
// CI gates it against the committed BENCH_PR2.json.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"deepheal/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "deepheal:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("deepheal", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "print only experiment summaries, not full series")
	outDir := fs.String("o", "", "also write <id>.txt (and <id>_<series>.tsv where available) into this directory")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal [-q] [-o dir] list | all | sim | bench | <experiment>...\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(fs.Output(), "  %s\n", id)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment selected")
	}

	var ids []string
	switch fs.Arg(0) {
	case "sim":
		return runSim(fs.Args()[1:])
	case "bench":
		return runBench(fs.Args()[1:])
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "all":
		ids = experiments.IDs()
	default:
		ids = fs.Args()
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	for _, id := range ids {
		start := time.Now()
		res, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n\n", res.ID(), res.Title(), time.Since(start).Seconds())
		if !*quiet {
			fmt.Println(res.Format())
		}
		if *outDir != "" {
			if err := writeOutputs(*outDir, res); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
	}
	return nil
}

// writeOutputs saves the formatted result and any machine-readable series.
func writeOutputs(dir string, res experiments.Result) error {
	txt := fmt.Sprintf("%s — %s\n\n%s", res.ID(), res.Title(), res.Format())
	if err := os.WriteFile(filepath.Join(dir, res.ID()+".txt"), []byte(txt), 0o644); err != nil {
		return err
	}
	exp, ok := res.(experiments.TSVExporter)
	if !ok {
		return nil
	}
	for name, content := range exp.TSV() {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.tsv", res.ID(), name))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
