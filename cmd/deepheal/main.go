// Command deepheal regenerates the paper's tables and figures from the
// calibrated simulators.
//
// Usage:
//
//	deepheal list                  # show available experiment ids
//	deepheal all                   # run every experiment
//	deepheal table1 fig5 ...       # run specific experiments
//	deepheal all -parallel 4       # fan experiment points across 4 workers
//	deepheal all -resume out/camp  # checkpoint/resume at point granularity
//	deepheal sim [flags]           # run one policy simulation directly
//	deepheal bench [flags]         # run tracked benchmarks, emit/compare JSON
//
// Experiments execute on the campaign engine: every experiment declares its
// independent simulation points, the engine fans them across a bounded
// worker pool (-parallel), deduplicates identical points across experiments
// by content hash, and — with -resume — journals completed points so a
// killed run picks up where it left off. Output is byte-identical for every
// worker count. Flags may appear before or after the experiment ids.
//
// SIGINT/SIGTERM cancel the campaign: experiments that already completed
// have had their output printed and written (-o), the journal keeps every
// completed point, and the process exits non-zero.
//
// Each experiment prints its paper-style table or series followed by a
// summary comparing the simulated result against the paper's anchors.
// The sim subcommand drives a single engine simulation with progress
// reporting and checkpoint/resume; see `deepheal sim -h`. The bench
// subcommand records the benchmark trajectory (see `deepheal bench -h`);
// CI gates it against the committed BENCH_PR2.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"deepheal/internal/campaign"
	"deepheal/internal/experiments"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:])
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepheal:", err)
		os.Exit(1)
	}
}

// parseInterspersed parses fs flags wherever they appear among args,
// collecting the positional arguments — so `deepheal all -q` works like
// `deepheal -q all`. The sim and bench verbs keep their remaining
// arguments raw: they own their own flag sets.
func parseInterspersed(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		args = fs.Args()
		if len(args) == 0 {
			return pos, nil
		}
		pos = append(pos, args[0])
		args = args[1:]
		if len(pos) == 1 && (pos[0] == "sim" || pos[0] == "bench") {
			return append(pos, args...), nil
		}
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deepheal", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "print only experiment summaries, not full series")
	outDir := fs.String("o", "", "also write <id>.txt (and <id>_<series>.tsv where available) into this directory")
	parallel := fs.Int("parallel", 1, "campaign worker pool size (0 = all CPUs); output is byte-identical for every setting")
	resume := fs.String("resume", "", "campaign directory: restore completed points from its journal, append new ones")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal [-q] [-o dir] [-parallel n] [-resume dir] list | all | sim | bench | <experiment>...\n\nexperiments:\n")
		for _, id := range experiments.IDs() {
			fmt.Fprintf(fs.Output(), "  %s\n", id)
		}
		fs.PrintDefaults()
	}
	pos, err := parseInterspersed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment selected")
	}

	var ids []string
	switch pos[0] {
	case "sim":
		return runSim(ctx, pos[1:])
	case "bench":
		return runBench(pos[1:])
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	case "all":
		if len(pos) > 1 {
			return fmt.Errorf("unexpected argument %q after \"all\"", pos[1])
		}
		ids = nil // every registered experiment
	default:
		ids = pos
	}
	return runCampaign(ctx, ids, *quiet, *outDir, *parallel, *resume)
}

// runCampaign executes the selected experiments on the campaign engine,
// printing and flushing each experiment's output as soon as it (and its
// predecessors, to keep registry order) completes.
func runCampaign(ctx context.Context, ids []string, quiet bool, outDir string, workers int, resumeDir string) error {
	tasks, err := experiments.Plans(ids...)
	if err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	opts := campaign.Options{Workers: workers}
	if resumeDir != "" {
		journal, err := campaign.OpenJournal(resumeDir)
		if err != nil {
			return err
		}
		defer journal.Close()
		if n := journal.Restorable(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed points in %s\n", n, resumeDir)
		}
		opts.Journal = journal
	}

	var outErr error
	opts.OnTask = func(o campaign.Outcome) {
		res, ok := o.Value.(experiments.Result)
		if !ok {
			return
		}
		fmt.Printf("=== %s — %s (%.1fs)\n\n", res.ID(), res.Title(), o.Elapsed.Seconds())
		if !quiet {
			fmt.Println(res.Format())
		}
		if outDir != "" && outErr == nil {
			if err := writeOutputs(outDir, res); err != nil {
				outErr = fmt.Errorf("%s: %w", res.ID(), err)
			}
		}
	}

	outcomes, runErr := campaign.Run(ctx, tasks, opts)
	if resumeDir != "" && len(outcomes) > 0 {
		if err := campaign.WriteStats(filepath.Join(resumeDir, "points.json"), outcomes); err != nil && runErr == nil {
			runErr = err
		}
	}
	if runErr != nil {
		return runErr
	}
	if outErr != nil {
		return outErr
	}

	var ran, memoised, restored int
	for _, o := range outcomes {
		for _, p := range o.Points {
			switch p.Source {
			case "run":
				ran++
			case "memo":
				memoised++
			case "journal":
				restored++
			}
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: %d points computed, %d memoised, %d restored from journal\n",
		ran, memoised, restored)
	return nil
}

// writeOutputs saves the formatted result and any machine-readable series.
func writeOutputs(dir string, res experiments.Result) error {
	txt := fmt.Sprintf("%s — %s\n\n%s", res.ID(), res.Title(), res.Format())
	if err := os.WriteFile(filepath.Join(dir, res.ID()+".txt"), []byte(txt), 0o644); err != nil {
		return err
	}
	exp, ok := res.(experiments.TSVExporter)
	if !ok {
		return nil
	}
	for name, content := range exp.TSV() {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.tsv", res.ID(), name))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
