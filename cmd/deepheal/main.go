// Command deepheal regenerates the paper's tables and figures from the
// calibrated simulators.
//
// Usage:
//
//	deepheal list                  # show available experiment ids
//	deepheal all                   # run every experiment
//	deepheal table1 fig5 ...       # run specific experiments
//	deepheal all -parallel 4       # fan experiment points across 4 workers
//	deepheal all -resume out/camp  # checkpoint/resume at point granularity
//	deepheal sim [flags]           # run one policy simulation directly
//	deepheal bench [flags]         # run tracked benchmarks, emit/compare JSON
//	deepheal serve [flags]         # host the chip-fleet HTTP/JSON service
//	deepheal coordinate [flags]    # publish a distributed work queue and assemble it
//	deepheal worker [flags]        # join a distributed campaign as one worker
//	deepheal all -timing           # print the scheduling profile after the run
//	deepheal timing points.json    # profile an already-written campaign stats file
//
// Experiments execute on the campaign engine: every experiment declares its
// independent simulation points, the engine fans them across a bounded
// worker pool (-parallel), deduplicates identical points across experiments
// by content hash, and — with -resume — journals completed points so a
// killed run picks up where it left off. Output is byte-identical for every
// worker count. Flags may appear before or after the experiment ids.
//
// SIGINT/SIGTERM cancel the campaign: experiments that already completed
// have had their output printed and written (-o), the journal keeps every
// completed point, and the process exits non-zero.
//
// Each experiment prints its paper-style table or series followed by a
// summary comparing the simulated result against the paper's anchors.
// The sim subcommand drives a single engine simulation with progress
// reporting and checkpoint/resume; see `deepheal sim -h`. The bench
// subcommand records the benchmark trajectory (see `deepheal bench -h`);
// CI gates it against the committed BENCH_PR7.json. The serve subcommand
// hosts the fleet service (see `deepheal serve -h`): on SIGTERM it drains
// HTTP, writes the fleet checkpoint and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"deepheal/internal/campaign"
	"deepheal/internal/campaign/dist"
	"deepheal/internal/core"
	"deepheal/internal/experiments"
	"deepheal/internal/faultinject"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
)

// Exit codes: 0 success, 1 generic failure, 3 campaign completed but
// quarantined points, 8 coordinator killed by an injected fault (the
// campaign directory stays resumable), 130 forced exit on a second
// interrupt. The worker verb additionally exits 7 on an injected worker
// death (see dist.go).
const (
	exitOK              = 0
	exitErr             = 1
	exitQuarantine      = 3
	exitCoordinatorDied = 8
	exitInterrupt       = 130
)

func main() {
	ctx, stop := withSignalHandling(context.Background(), os.Exit)
	err := run(ctx, os.Args[1:])
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepheal:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps a run error onto the process exit code.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, campaign.ErrQuarantined):
		return exitQuarantine
	case errors.Is(err, dist.ErrCoordinatorDied):
		return exitCoordinatorDied
	default:
		return exitErr
	}
}

// withSignalHandling cancels the returned context on the first SIGINT or
// SIGTERM — the graceful path: in-flight points finish, the journal keeps
// every completed point — and calls exit(130) on a second signal, for when
// the graceful shutdown is itself wedged. The returned stop function
// releases the signal handler and the watcher goroutine.
func withSignalHandling(parent context.Context, exit func(int)) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	quit := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case <-sigs:
			fmt.Fprintln(os.Stderr, "deepheal: interrupted, finishing in-flight work (interrupt again to force exit)")
			cancel()
		case <-quit:
			return
		}
		select {
		case <-sigs:
			fmt.Fprintln(os.Stderr, "deepheal: second interrupt, exiting immediately")
			exit(exitInterrupt)
		case <-quit:
		}
	}()
	stop := func() {
		signal.Stop(sigs)
		once.Do(func() { close(quit) })
		cancel()
	}
	return ctx, stop
}

// parseInterspersed parses fs flags wherever they appear among args,
// collecting the positional arguments — so `deepheal all -q` works like
// `deepheal -q all`. The sim, bench and serve verbs keep their remaining
// arguments raw: they own their own flag sets.
func parseInterspersed(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		args = fs.Args()
		if len(args) == 0 {
			return pos, nil
		}
		pos = append(pos, args[0])
		args = args[1:]
		if len(pos) == 1 {
			switch pos[0] {
			case "sim", "bench", "serve", "worker", "coordinate":
				return append(pos, args...), nil
			}
		}
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deepheal", flag.ContinueOnError)
	quiet := fs.Bool("q", false, "print only experiment summaries, not full series")
	outDir := fs.String("o", "", "also write <id>.txt (and <id>_<series>.tsv where available) into this directory")
	parallel := fs.Int("parallel", 1, "campaign worker pool size (0 = all CPUs); output is byte-identical for every setting")
	resume := fs.String("resume", "", "campaign directory: restore completed points from its journal, append new ones")
	faults := fs.String("faults", "", "fault-injection spec for chaos runs, e.g. 'point-error:p=0.2;worker-panic:occ=2' (see internal/faultinject)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault injector (-faults)")
	retries := fs.Int("retries", 1, "attempts per campaign point before it is quarantined")
	pointTimeout := fs.Duration("point-timeout", 0, "deadline per point attempt; a miss is retried, then quarantined (0 = none)")
	stallTimeout := fs.Duration("stall-timeout", 0, "log points still running after this long (0 = off)")
	timing := fs.Bool("timing", false, "after the campaign, print the scheduling profile (slowest points, LPT critical path) to stderr")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	var prof obsflag.Profile
	prof.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal [-q] [-o dir] [-parallel n] [-resume dir] [-faults spec] list | all | sim | bench | serve | coordinate | worker | timing <points.json> | <experiment>...\n\nexperiments:\n")
		for _, id := range experiments.SortedIDs() {
			fmt.Fprintf(fs.Output(), "  %s\n", id)
		}
		fs.PrintDefaults()
	}
	pos, err := parseInterspersed(fs, args)
	if err != nil {
		return err
	}
	if len(pos) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment selected")
	}

	if *faults != "" {
		plan, err := faultinject.ParseSpec(*faults)
		if err != nil {
			return err
		}
		inj, err := faultinject.New(*faultSeed, plan)
		if err != nil {
			return err
		}
		faultinject.Enable(inj)
		defer faultinject.Disable()
		fmt.Fprintf(os.Stderr, "fault injection armed: %s (seed %d)\n", *faults, *faultSeed)
	}

	var ids []string
	switch pos[0] {
	case "sim":
		return runSim(ctx, pos[1:])
	case "bench":
		return runBench(pos[1:])
	case "serve":
		return runServe(ctx, pos[1:])
	case "worker":
		return runWorkerCmd(ctx, pos[1:])
	case "coordinate":
		return runCoordinate(ctx, pos[1:])
	case "list":
		for _, id := range experiments.SortedIDs() {
			fmt.Println(id)
		}
		return nil
	case "timing":
		if len(pos) != 2 {
			return fmt.Errorf("usage: deepheal timing <points.json>")
		}
		stats, err := campaign.ReadStats(pos[1])
		if err != nil {
			return err
		}
		fmt.Print(campaign.TimingReport(stats, 10, []int{1, 2, 4, 8}))
		return nil
	case "all":
		if len(pos) > 1 {
			return fmt.Errorf("unexpected argument %q after \"all\"", pos[1])
		}
		ids = nil // every registered experiment
	default:
		ids = pos
	}
	stopProfiles, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProfiles()
	var reg *obs.Registry
	if metrics.Enabled() {
		reg = obs.NewRegistry()
	}
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	campaign.EnableMetrics(reg)
	defer campaign.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return err
	}
	if err := runCampaign(ctx, ids, campaignConfig{
		Quiet:        *quiet,
		OutDir:       *outDir,
		Workers:      *parallel,
		ResumeDir:    *resume,
		Retries:      *retries,
		PointTimeout: *pointTimeout,
		StallTimeout: *stallTimeout,
		Timing:       *timing,
	}); err != nil {
		finishMetrics()
		return err
	}
	return finishMetrics()
}

// campaignConfig bundles the CLI knobs that shape a campaign run.
type campaignConfig struct {
	Quiet        bool
	OutDir       string
	Workers      int
	ResumeDir    string
	Retries      int
	PointTimeout time.Duration
	StallTimeout time.Duration
	Timing       bool
	// Quarantined pre-quarantines points by content hash (message per
	// hash); the coordinator feeds it with the fleet's poison-point markers.
	Quarantined map[string]string
}

// runCampaign executes the selected experiments on the campaign engine,
// printing and flushing each experiment's output as soon as it (and its
// predecessors, to keep registry order) completes. Experiments whose points
// were quarantined are reported on stderr and turn the overall run into an
// ErrQuarantined failure — after every healthy experiment has still been
// printed and written.
func runCampaign(ctx context.Context, ids []string, cfg campaignConfig) error {
	tasks, err := experiments.Plans(ids...)
	if err != nil {
		return err
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return err
		}
	}

	opts := campaign.Options{
		Workers:      cfg.Workers,
		PointTimeout: cfg.PointTimeout,
		StallTimeout: cfg.StallTimeout,
		Quarantined:  cfg.Quarantined,
		Retry: campaign.RetryPolicy{
			MaxAttempts: cfg.Retries,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    2 * time.Second,
		},
		OnStall: func(task, key string, running time.Duration) {
			fmt.Fprintf(os.Stderr, "campaign: point %s (%s) still running after %s\n", key, task, running.Round(time.Second))
		},
	}
	if cfg.ResumeDir != "" {
		journal, err := campaign.OpenJournal(cfg.ResumeDir)
		if err != nil {
			return err
		}
		defer journal.Close()
		if n := journal.Corrupted(); n > 0 {
			fmt.Fprintf(os.Stderr, "journal: skipped %d corrupted record(s); those points will be recomputed\n", n)
		}
		if n := journal.Restorable(); n > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed points in %s\n", n, cfg.ResumeDir)
		}
		opts.Journal = journal
	}

	var outErr error
	opts.OnTask = func(o campaign.Outcome) {
		if o.Err != nil {
			fmt.Fprintf(os.Stderr, "campaign: experiment %s failed: %v\n", o.Task, o.Err)
			return
		}
		res, ok := o.Value.(experiments.Result)
		if !ok {
			return
		}
		fmt.Printf("=== %s — %s (%.1fs)\n\n", res.ID(), res.Title(), o.Elapsed.Seconds())
		if !cfg.Quiet {
			fmt.Println(res.Format())
		}
		if cfg.OutDir != "" && outErr == nil {
			if err := writeOutputs(cfg.OutDir, res); err != nil {
				outErr = fmt.Errorf("%s: %w", res.ID(), err)
			}
		}
	}

	outcomes, runErr := campaign.Run(ctx, tasks, opts)
	if cfg.ResumeDir != "" && len(outcomes) > 0 {
		if err := campaign.WriteStats(filepath.Join(cfg.ResumeDir, "points.json"), outcomes); err != nil && runErr == nil {
			runErr = err
		}
	}
	if cfg.Timing && len(outcomes) > 0 {
		// Stderr, like the campaign summary line: experiment stdout stays
		// byte-identical whether or not the profile is requested.
		fmt.Fprint(os.Stderr, campaign.TimingReport(campaign.StatsFromOutcomes(outcomes), 10, []int{1, 2, 4, 8}))
	}
	if runErr != nil && !errors.Is(runErr, campaign.ErrQuarantined) {
		return runErr
	}
	if quarantined := campaign.QuarantinedPoints(outcomes); len(quarantined) > 0 {
		for _, p := range quarantined {
			if p.Source == "quarantined" {
				// Pre-quarantined by the distributed fleet, never executed
				// here: the marker's cause is the whole story.
				fmt.Fprintf(os.Stderr, "campaign: quarantined %s: %s\n", p.Key, p.Err)
				continue
			}
			fmt.Fprintf(os.Stderr, "campaign: quarantined %s after %d attempt(s)\n", p.Key, p.Attempts)
		}
		return fmt.Errorf("%d point(s) %w", len(quarantined), campaign.ErrQuarantined)
	}
	if runErr != nil {
		return runErr
	}
	if outErr != nil {
		return outErr
	}

	var ran, memoised, restored int
	for _, o := range outcomes {
		for _, p := range o.Points {
			switch p.Source {
			case "run":
				ran++
			case "memo":
				memoised++
			case "journal":
				restored++
			}
		}
	}
	fmt.Fprintf(os.Stderr, "campaign: %d points computed, %d memoised, %d restored from journal\n",
		ran, memoised, restored)
	return nil
}

// writeOutputs saves the formatted result and any machine-readable series.
func writeOutputs(dir string, res experiments.Result) error {
	txt := fmt.Sprintf("%s — %s\n\n%s", res.ID(), res.Title(), res.Format())
	if err := os.WriteFile(filepath.Join(dir, res.ID()+".txt"), []byte(txt), 0o644); err != nil {
		return err
	}
	exp, ok := res.(experiments.TSVExporter)
	if !ok {
		return nil
	}
	for name, content := range exp.TSV() {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.tsv", res.ID(), name))
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
