package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"deepheal/internal/campaign"
	"deepheal/internal/core"
	"deepheal/internal/faultinject"
)

// TestDoubleInterruptForcesExit drives the real signal path: the first
// SIGINT cancels the context (graceful drain), the second calls exit(130).
func TestDoubleInterruptForcesExit(t *testing.T) {
	exited := make(chan int, 1)
	ctx, stop := withSignalHandling(context.Background(), func(code int) { exited <- code })
	defer stop()

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case code := <-exited:
		t.Fatalf("first interrupt force-exited with %d", code)
	case <-time.After(5 * time.Second):
		t.Fatal("first interrupt did not cancel the context")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exited:
		if code != exitInterrupt {
			t.Fatalf("second interrupt exit code = %d, want %d", code, exitInterrupt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second interrupt did not force an exit")
	}
}

func TestStopReleasesSignalHandlerWithoutExiting(t *testing.T) {
	exited := make(chan int, 1)
	ctx, stop := withSignalHandling(context.Background(), func(code int) { exited <- code })
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("stop triggered exit(%d)", code)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(nil); got != exitOK {
		t.Errorf("exitCode(nil) = %d", got)
	}
	if got := exitCode(errors.New("boom")); got != exitErr {
		t.Errorf("generic error exit code = %d, want %d", got, exitErr)
	}
	wrapped := &wrapQuarantine{}
	if got := exitCode(wrapped); got != exitQuarantine {
		t.Errorf("quarantine exit code = %d, want %d", got, exitQuarantine)
	}
}

type wrapQuarantine struct{}

func (*wrapQuarantine) Error() string { return "3 point(s) quarantined" }
func (*wrapQuarantine) Unwrap() error { return campaign.ErrQuarantined }

func TestBadFaultSpecRejected(t *testing.T) {
	if err := run(context.Background(), []string{"-faults", "no-such-site:p=0.5", "list"}); err == nil {
		t.Fatal("unknown fault site accepted")
	}
	if err := run(context.Background(), []string{"-faults", "point-error:p=nope", "list"}); err == nil {
		t.Fatal("malformed probability accepted")
	}
}

// TestChaosCampaignQuarantinesAndSurvivors runs a two-experiment campaign
// with one injected point error: the campaign must complete, report
// ErrQuarantined, enumerate the quarantined point in points.json, and emit
// byte-identical artifacts for the surviving experiment.
func TestChaosCampaignQuarantinesAndSurvivors(t *testing.T) {
	chaosOut := t.TempDir()
	resumeDir := t.TempDir()
	cleanOut := t.TempDir()

	err := run(context.Background(), []string{
		"-q", "-o", chaosOut, "-resume", resumeDir,
		"-faults", "point-error:occ=1", "table1", "fig4",
	})
	if err == nil {
		t.Fatal("chaos campaign reported success despite an injected point failure")
	}
	if !errors.Is(err, campaign.ErrQuarantined) {
		t.Fatalf("chaos campaign error = %v, want ErrQuarantined", err)
	}

	data, rerr := os.ReadFile(filepath.Join(resumeDir, "points.json"))
	if rerr != nil {
		t.Fatalf("points.json not written: %v", rerr)
	}
	var stats []struct {
		Task   string               `json:"task"`
		Err    string               `json:"err"`
		Points []campaign.PointStat `json:"points"`
	}
	if jerr := json.Unmarshal(data, &stats); jerr != nil {
		t.Fatal(jerr)
	}
	var quarantined []campaign.PointStat
	for _, ts := range stats {
		for _, s := range ts.Points {
			if s.Quarantined {
				quarantined = append(quarantined, s)
				if ts.Err == "" {
					t.Errorf("task %s has a quarantined point but no task-level err", ts.Task)
				}
			}
		}
	}
	if len(quarantined) != 1 {
		t.Fatalf("points.json enumerates %d quarantined points, want 1: %s", len(quarantined), data)
	}
	if q := quarantined[0]; q.Attempts < 1 || q.Err == "" {
		t.Errorf("quarantined entry missing attempts/err: %+v", q)
	}

	// Every experiment that did not own the quarantined point must have
	// produced output identical to a fault-free run.
	if err := run(context.Background(), []string{"-q", "-o", cleanOut, "table1", "fig4"}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	survivors := 0
	for _, id := range []string{"table1", "fig4"} {
		chaosPath := filepath.Join(chaosOut, id+".txt")
		chaosBytes, err := os.ReadFile(chaosPath)
		if errors.Is(err, os.ErrNotExist) {
			continue // this experiment failed; no artifact expected
		}
		if err != nil {
			t.Fatal(err)
		}
		cleanBytes, err := os.ReadFile(filepath.Join(cleanOut, id+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chaosBytes, cleanBytes) {
			t.Errorf("%s: surviving output differs from fault-free run", id)
		}
		survivors++
	}
	if survivors == 0 {
		t.Error("no experiment survived a single injected point error")
	}
}

// TestChaosCampaignRetrySucceeds: with a retry budget, a once-only injected
// error must not quarantine anything — the retry recomputes the point and
// the run exits cleanly.
func TestChaosCampaignRetrySucceeds(t *testing.T) {
	out := t.TempDir()
	clean := t.TempDir()
	err := run(context.Background(), []string{
		"-q", "-o", out, "-retries", "2",
		"-faults", "point-error:occ=1", "table1",
	})
	if err != nil {
		t.Fatalf("retry did not absorb a transient point error: %v", err)
	}
	if err := run(context.Background(), []string{"-q", "-o", clean, "table1"}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(filepath.Join(out, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(clean, "table1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("retried run output differs from fault-free run")
	}
}

// TestSimResumeRejectsTruncatedCheckpoint injects a mid-write truncation
// into the checkpoint save — as if power died half-way — and verifies the
// CLI resume fails loudly instead of silently restoring garbage. The save
// is driven directly because a run that reaches its horizon deletes its
// checkpoint; the truncated file must survive for the resume attempt.
func TestSimResumeRejectsTruncatedCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sim.ckpt")
	cfg := core.DefaultConfig()
	cfg.Steps = 25
	sim, err := core.NewSimulator(cfg, core.DefaultDeepHealing())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunSteps(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	full, err := sim.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	inj, err := faultinject.New(1, map[faultinject.Site]faultinject.Schedule{
		faultinject.SiteCheckpointTruncate: {Occurrences: []uint64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Enable(inj)
	saveErr := saveCheckpoint(ckpt, sim)
	faultinject.Disable()
	if saveErr != nil {
		t.Fatal(saveErr)
	}
	info, err := os.Stat(ckpt)
	if err != nil {
		t.Fatalf("checkpoint was not written: %v", err)
	}
	if info.Size() == 0 || info.Size() >= int64(len(full)) {
		t.Fatalf("checkpoint is %d bytes, want a truncated fraction of %d", info.Size(), len(full))
	}

	err = run(context.Background(), []string{"sim", "-steps", "25", "-checkpoint", ckpt})
	if err == nil {
		t.Fatal("resume accepted a truncated checkpoint")
	}
	if !strings.Contains(err.Error(), "resume from") {
		t.Errorf("resume error %q does not identify the checkpoint", err)
	}
}
