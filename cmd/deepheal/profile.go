package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags is the -cpuprofile/-memprofile pair shared by the long-running
// subcommands. Register the flags, then defer stop() once parsing succeeds.
type profileFlags struct {
	cpu, mem string
}

// start begins CPU profiling (if requested) and returns a stop function that
// finishes the CPU profile and writes the heap profile. The stop function is
// safe to call exactly once; profile-file errors are reported on stderr
// rather than failing the run whose work is already done.
func (p *profileFlags) start() (stop func(), err error) {
	var cpuFile *os.File
	if p.cpu != "" {
		cpuFile, err = os.Create(p.cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "deepheal: cpuprofile:", err)
			}
		}
		if p.mem != "" {
			f, err := os.Create(p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "deepheal: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "deepheal: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "deepheal: memprofile:", err)
			}
		}
	}, nil
}
