package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"deepheal/internal/core"
	"deepheal/internal/engine"
	"deepheal/internal/faultinject"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
)

// runSim executes a single engine-driven lifetime simulation with optional
// progress reporting and checkpoint/resume.
func runSim(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("deepheal sim", flag.ContinueOnError)
	policy := fs.String("policy", "deep-healing", "scheduling policy to run")
	rows := fs.Int("rows", 0, "die rows (0 = default config)")
	cols := fs.Int("cols", 0, "die cols (0 = default config)")
	steps := fs.Int("steps", 0, "simulated steps (0 = default config)")
	workers := fs.Int("workers", 0, "wearout-stage worker bound (0 = GOMAXPROCS, 1 = serial)")
	progress := fs.Bool("progress", false, "print step progress while running")
	checkpoint := fs.String("checkpoint", "", "checkpoint file: resume from it if present, save into it while running")
	checkpointEvery := fs.Int("checkpoint-every", 100, "steps between checkpoint saves (with -checkpoint)")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	var prof obsflag.Profile
	prof.Register(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: deepheal sim [flags]\n\npolicies:\n")
		for _, name := range core.PolicyNames() {
			fmt.Fprintf(fs.Output(), "  %s\n", name)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("sim: unexpected argument %q", fs.Arg(0))
	}
	pol, err := core.NewPolicy(*policy)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if *checkpoint != "" && *checkpointEvery < 1 {
		return fmt.Errorf("sim: -checkpoint-every must be at least 1")
	}
	stopProfiles, err := prof.Start()
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	defer stopProfiles()

	// Metrics come on before the simulator is built so every kernel build,
	// CG solve and pipeline stage of this run is counted from step zero.
	var reg *obs.Registry
	if metrics.Enabled() {
		reg = obs.NewRegistry()
	}
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}

	cfg := core.DefaultConfig()
	if *rows > 0 || *cols > 0 {
		r, c := cfg.Rows, cfg.Cols
		if *rows > 0 {
			r = *rows
		}
		if *cols > 0 {
			c = *cols
		}
		cfg = core.ConfigForGrid(r, c)
	}
	if *steps > 0 {
		cfg.Steps = *steps
	}

	opts := []core.Option{core.WithWorkers(*workers)}
	if *progress {
		opts = append(opts, core.WithProgress(func(step, total int) {
			if step%10 == 0 || step == total {
				fmt.Fprintf(os.Stderr, "\rstep %d/%d", step, total)
			}
			if step == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}

	sim, err := core.NewSimulator(cfg, pol, opts...)
	if err != nil {
		return err
	}
	if *checkpoint != "" {
		data, err := os.ReadFile(*checkpoint)
		switch {
		case err == nil:
			if err := sim.Restore(data); err != nil {
				return fmt.Errorf("sim: resume from %s: %w", *checkpoint, err)
			}
			fmt.Printf("resumed from %s at step %d/%d\n", *checkpoint, sim.Step(), cfg.Steps)
		case errors.Is(err, os.ErrNotExist):
			// First run: the file appears once the first checkpoint is saved.
		default:
			return err
		}
	}

	start := time.Now()
	for sim.Step() < cfg.Steps {
		n := cfg.Steps - sim.Step()
		if *checkpoint != "" && n > *checkpointEvery {
			n = *checkpointEvery
		}
		if err := sim.RunSteps(ctx, n); err != nil {
			return err
		}
		if *checkpoint != "" && sim.Step() < cfg.Steps {
			if err := saveCheckpoint(*checkpoint, sim); err != nil {
				return err
			}
		}
	}
	rep, err := sim.RunContext(ctx)
	if err != nil {
		return err
	}
	if err := finishMetrics(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if *checkpoint != "" {
		// The horizon is done; a stale checkpoint would only re-run the end.
		if err := os.Remove(*checkpoint); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}

	fmt.Printf("policy %s: %d steps on a %dx%d die in %.1fs\n",
		rep.Policy, len(rep.Series), cfg.Rows, cfg.Cols, time.Since(start).Seconds())
	fmt.Printf("  guardband       %6.2f %%\n", rep.GuardbandFrac*100)
	fmt.Printf("  final shift     %6.1f mV\n", rep.FinalShiftV*1000)
	fmt.Printf("  availability    %6.2f %%\n", rep.Availability*100)
	fmt.Printf("  recovery spent  %6.2f %% of core-steps\n", rep.RecoveryOverhead*100)
	if rep.EMNucleated {
		fmt.Printf("  EM: void nucleated")
		if rep.EMFailedStep >= 0 {
			fmt.Printf(", grid segment broke at step %d", rep.EMFailedStep)
		}
		fmt.Println()
	} else {
		fmt.Println("  EM: no void nucleation")
	}
	fmt.Println("  stage wall time:")
	printStageTimes(sim.StageTimes())
	return nil
}

// saveCheckpoint writes the simulator snapshot atomically (write + rename) so
// a crash mid-save never corrupts the resume point.
func saveCheckpoint(path string, sim *core.Simulator) error {
	data, err := sim.Snapshot()
	if err != nil {
		return err
	}
	if faultinject.Hit(faultinject.SiteCheckpointTruncate, path) {
		data = data[:len(data)/2] // simulate power loss mid-write
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func printStageTimes(times map[engine.StageName]time.Duration) {
	order := []engine.StageName{
		engine.StagePlan, engine.StageElectrical, engine.StageThermal,
		engine.StageWearout, engine.StageSense, engine.StageRecord,
	}
	var total time.Duration
	for _, d := range times {
		total += d
	}
	for _, name := range order {
		d, ok := times[name]
		if !ok {
			continue
		}
		frac := 0.0
		if total > 0 {
			frac = float64(d) / float64(total) * 100
		}
		fmt.Printf("    %-10s %10s  %5.1f %%\n", name, d.Round(time.Microsecond), frac)
	}
}
