// Command btisim runs a standalone BTI stress/recovery trace on the
// calibrated CET-map model and prints the threshold-shift time series.
//
// Usage:
//
//	btisim -stress 24h -svolt 1.4 -stemp 110 \
//	       -recover 6h -rvolt -0.3 -rtemp 110 -sample 30m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepheal/internal/bti"
	"deepheal/internal/core"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
	"deepheal/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "btisim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("btisim", flag.ContinueOnError)
	stressDur := fs.Duration("stress", 24*time.Hour, "stress phase duration")
	stressV := fs.Float64("svolt", bti.StressAccel.GateVoltage, "stress gate voltage (V)")
	stressT := fs.Float64("stemp", bti.StressAccel.Temp.C(), "stress temperature (°C)")
	recoverDur := fs.Duration("recover", 6*time.Hour, "recovery phase duration")
	recoverV := fs.Float64("rvolt", bti.RecoverDeep.GateVoltage, "recovery gate voltage (V, negative = active)")
	recoverT := fs.Float64("rtemp", bti.RecoverDeep.Temp.C(), "recovery temperature (°C)")
	sample := fs.Duration("sample", 30*time.Minute, "trace sampling interval")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Metrics ride the same cascade as the full simulator, so the kernel
	// cache and CET sweep counters of even a standalone trace are visible.
	var reg *obs.Registry
	if metrics.Enabled() {
		reg = obs.NewRegistry()
	}
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return err
	}

	dev, err := bti.NewDevice(bti.DefaultParams())
	if err != nil {
		return err
	}
	stress := bti.Condition{GateVoltage: *stressV, Temp: units.Celsius(*stressT)}
	recover := bti.Condition{GateVoltage: *recoverV, Temp: units.Celsius(*recoverT)}

	fmt.Printf("# stress %v at %v, recovery %v at %v\n", *stressDur, stress, *recoverDur, recover)
	fmt.Println("phase\tt_hours\tshift_mV\tpermanent_mV")
	emit := func(phase string, t, shift float64) {
		fmt.Printf("%s\t%.2f\t%.3f\t%.3f\n", phase, units.SecondsToHours(t), shift*1000, dev.PermanentV()*1000)
	}
	dev.ApplyObserved(stress, stressDur.Seconds(), sample.Seconds(), func(t, s float64) { emit("stress", t, s) })
	peak := dev.ShiftV()
	dev.ApplyObserved(recover, recoverDur.Seconds(), sample.Seconds(), func(t, s float64) {
		emit("recover", stressDur.Seconds()+t, s)
	})
	if peak > 0 {
		fmt.Printf("# recovered %.1f%% of the stress-induced shift\n", (peak-dev.ShiftV())/peak*100)
	}
	return finishMetrics()
}
