package main

import "testing"

func TestRunDefaultsShortened(t *testing.T) {
	if err := run([]string{"-stress", "2h", "-recover", "1h", "-sample", "30m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-stress", "bogus"}); err == nil {
		t.Error("bad duration accepted")
	}
}
