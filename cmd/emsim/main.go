// Command emsim runs a standalone electromigration stress/recovery trace on
// the calibrated Korhonen wire model and prints the resistance time series.
//
// Usage:
//
//	emsim -stress 16h -j 7.96 -temp 230 -recover 3.2h -rj -7.96 -sample 30m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepheal/internal/core"
	"deepheal/internal/em"
	"deepheal/internal/obs"
	"deepheal/internal/obsflag"
	"deepheal/internal/units"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "emsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("emsim", flag.ContinueOnError)
	stressDur := fs.Duration("stress", 16*time.Hour, "stress phase duration")
	jStress := fs.Float64("j", 7.96, "stress current density (MA/cm², signed)")
	tempC := fs.Float64("temp", 230, "temperature (°C)")
	recoverDur := fs.Duration("recover", 192*time.Minute, "recovery phase duration")
	jRecover := fs.Float64("rj", -7.96, "recovery current density (MA/cm², signed; 0 = passive)")
	sample := fs.Duration("sample", 30*time.Minute, "trace sampling interval")
	var metrics obsflag.Metrics
	metrics.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Metrics ride the same cascade as the full simulator, so the solver
	// counters behind a standalone wire trace are visible.
	var reg *obs.Registry
	if metrics.Enabled() {
		reg = obs.NewRegistry()
	}
	core.EnableMetrics(reg)
	defer core.EnableMetrics(nil)
	finishMetrics, err := metrics.Start(reg)
	if err != nil {
		return err
	}

	w, err := em.NewWire(em.DefaultParams())
	if err != nil {
		return err
	}
	temp := units.Celsius(*tempC)
	fmt.Printf("# wire: %.2f Ω fresh at %v; stress %v at %.2f MA/cm², recovery %v at %.2f MA/cm²\n",
		em.DefaultParams().Resistance0(temp), temp, *stressDur, *jStress, *recoverDur, *jRecover)
	fmt.Println("phase\tt_min\tR_ohm\tmax_stress\tvoid_um")
	emit := func(phase string, offset float64, s em.Sample) {
		fmt.Printf("%s\t%.0f\t%.3f\t%.3f\t%.4f\n", phase, offset+s.TimeMin, s.ResistanceOhm, s.MaxStress, s.VoidLenM*1e6)
	}
	stress, err := w.Run(units.MAPerCm2(*jStress), temp, stressDur.Seconds(), sample.Seconds())
	if err != nil {
		return err
	}
	for _, s := range stress {
		emit("stress", 0, s)
	}
	peak := w.Resistance(temp)
	recover, err := w.Run(units.MAPerCm2(*jRecover), temp, recoverDur.Seconds(), sample.Seconds())
	if err != nil {
		return err
	}
	for _, s := range recover {
		emit("recover", units.SecondsToMinutes(stressDur.Seconds()), s)
	}
	if w.Broken() {
		fmt.Println("# wire failed open")
		return finishMetrics()
	}
	fresh := em.DefaultParams().Resistance0(temp)
	if rise := peak - fresh; rise > 0 {
		fmt.Printf("# recovered %.1f%% of the EM-induced rise; residual %.3f Ω\n",
			(peak-w.Resistance(temp))/rise*100, w.Resistance(temp)-fresh)
	}
	return finishMetrics()
}
