package main

import "testing"

func TestRunShortTrace(t *testing.T) {
	if err := run([]string{"-stress", "4h", "-recover", "1h", "-sample", "1h"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPassiveRecovery(t *testing.T) {
	if err := run([]string{"-stress", "2h", "-recover", "1h", "-rj", "0", "-sample", "1h"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-j", "notanumber"}); err == nil {
		t.Error("bad flag accepted")
	}
}
