// Variability scenario: guardbands are sized for the worst device of a
// variable population, not the average one. This example ages a 100-device
// population twice — once under continuous stress, once under the paper's
// balanced deep-healing schedule — and prints the shift distributions as
// text histograms. Deep healing's win is largest exactly where it matters:
// in the slow-recovery tail that sets the design margin.
package main

import (
	"fmt"
	"log"
	"strings"

	"deepheal"
)

const (
	populationSize = 100
	stressHours    = 12
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	stressed, err := agedPopulation(false)
	if err != nil {
		return err
	}
	healed, err := agedPopulation(true)
	if err != nil {
		return err
	}

	fmt.Printf("%d devices, %d h of accelerated stress each\n\n", populationSize, stressHours)
	fmt.Println("continuous stress:")
	histogram(stressed.Shifts())
	st := stressed.Stats()
	fmt.Printf("  mean %.1f mV, P95 %.1f mV, worst %.1f mV\n\n", st.MeanV*1000, st.P95V*1000, st.WorstV*1000)

	fmt.Println("1 h : 1 h deep healing schedule (same stress hours):")
	histogram(healed.Shifts())
	h := healed.Stats()
	fmt.Printf("  mean %.1f mV, P95 %.1f mV, worst %.1f mV\n\n", h.MeanV*1000, h.P95V*1000, h.WorstV*1000)

	fmt.Printf("worst-case (guardband-setting) shift reduced %.1fx\n", st.WorstV/h.WorstV)
	return nil
}

// agedPopulation draws the same population (same seed) and ages it with or
// without interleaved deep recovery.
func agedPopulation(heal bool) (*deepheal.BTIPopulation, error) {
	pop, err := deepheal.NewBTIPopulation(
		deepheal.DefaultBTIParams(), deepheal.DefaultBTIVariation(),
		populationSize, deepheal.NewRNG(404))
	if err != nil {
		return nil, err
	}
	if !heal {
		pop.Apply(deepheal.StressAccel, deepheal.Hours(stressHours))
		return pop, nil
	}
	for i := 0; i < stressHours; i++ {
		pop.Apply(deepheal.StressAccel, deepheal.Hours(1))
		pop.Apply(deepheal.RecoverDeep, deepheal.Hours(1))
	}
	return pop, nil
}

// histogram prints a 10-bin text histogram of shifts in millivolts.
func histogram(shifts []float64) {
	const bins = 10
	lo, hi := shifts[0], shifts[0]
	for _, s := range shifts {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	width := (hi - lo) / bins
	if width <= 0 {
		fmt.Printf("  all devices at %.2f mV\n", lo*1000)
		return
	}
	counts := make([]int, bins)
	for _, s := range shifts {
		b := int((s - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	for b := 0; b < bins; b++ {
		left := (lo + float64(b)*width) * 1000
		fmt.Printf("  %6.2f mV | %s %d\n", left, strings.Repeat("#", counts[b]), counts[b])
	}
}
