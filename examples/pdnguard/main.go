// PDN guard scenario (the paper's §IV-A): protect a power-delivery rail
// against electromigration with the assist circuitry. The example first
// shows the circuit itself — the three operating modes, the current
// reversal and the rail swap — and then uses the wire-level EM model to
// quantify what the periodic EM Active Recovery intervals buy: voids that
// would nucleate and break the rail never form.
package main

import (
	"fmt"
	"log"

	"deepheal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The assist circuitry (Fig. 8) under its three modes.
	a, err := deepheal.NewAssist(deepheal.DefaultAssistConfig())
	if err != nil {
		return err
	}
	fmt.Println("assist circuitry operating points:")
	for _, m := range []deepheal.AssistMode{
		deepheal.ModeNormal, deepheal.ModeEMRecovery, deepheal.ModeBTIRecovery,
	} {
		if err := a.SetMode(m); err != nil {
			return err
		}
		op, err := a.Operating()
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s load = %+0.3f V, VDD-grid current = %+7.1f µA\n",
			m, op.LoadVoltage(), op.GridCurrent*1e6)
	}

	// 2. What the EM Active Recovery mode buys at the wire level: schedule
	// reverse intervals before voids nucleate (Fig. 7's "economic" timing).
	j := deepheal.MAPerCm2(7.96)
	temp := deepheal.Celsius(230)

	unprotected, err := deepheal.NewWire(deepheal.DefaultEMParams())
	if err != nil {
		return err
	}
	ttf, err := unprotected.TimeToFailure(j, temp, deepheal.Hours(48))
	if err != nil {
		return err
	}
	fmt.Printf("\nunprotected rail: void nucleates and the metal breaks after %.0f min\n", ttf/60)

	protected, err := deepheal.NewWire(deepheal.DefaultEMParams())
	if err != nil {
		return err
	}
	const horizon = 96 // hours
	for protected.Time() < deepheal.Hours(horizon) && !protected.Broken() {
		protected.Run(j, temp, deepheal.Minutes(120), 0) // normal operation
		protected.Run(-j, temp, deepheal.Minutes(40), 0) // EM Active Recovery
	}
	if protected.Broken() {
		fmt.Printf("protected rail: failed at %.0f min\n", protected.Time()/60)
		return nil
	}
	fmt.Printf("protected rail (120 min normal / 40 min reversed): alive after %d h, peak stress %.2f of critical, no void ever nucleated\n",
		horizon, protected.MaxStress())
	fmt.Println("the load never notices: the assist circuitry keeps its supply polarity unchanged in EM recovery mode")
	return nil
}
