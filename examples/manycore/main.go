// Many-core dark-silicon scenario (the paper's §IV-B, Fig. 12): a 16-core
// die runs a mixed workload over an accelerated-equivalent lifetime while a
// scheduling policy decides when cores take BTI deep-recovery intervals
// (their work migrating to neighbours, whose heat accelerates the healing)
// and when the assist circuitry reverses the power-grid current.
//
// The example prints the Fig. 12(b)-style outcome: the worst-case design
// margin versus the margin a deep-healing system actually needs.
package main

import (
	"fmt"
	"log"

	"deepheal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := deepheal.DefaultSystemConfig()
	// A mixed workload: sustained services, staggered periodic tasks and
	// duty-cycled blocks — enough spare capacity for rotation.
	n := cfg.NumCores()
	cfg.Workloads = make([]deepheal.WorkloadProfile, n)
	for i := range cfg.Workloads {
		switch i % 3 {
		case 0:
			cfg.Workloads[i] = deepheal.ConstantWorkload(0.8)
		case 1:
			cfg.Workloads[i] = deepheal.PeriodicWorkload(5, 3, 0.9)
		default:
			cfg.Workloads[i] = deepheal.IoTWorkload(8, 3, 0.9)
		}
	}

	policies := []deepheal.Policy{
		&deepheal.NoRecoveryPolicy{},
		&deepheal.PassiveRecoveryPolicy{},
		deepheal.DefaultDeepHealing(),
	}
	reports := make([]*deepheal.SystemReport, 0, len(policies))
	for _, pol := range policies {
		sim, err := deepheal.NewSimulator(cfg, pol)
		if err != nil {
			return err
		}
		rep, err := sim.Run()
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		fail := "none"
		if rep.EMFailedStep >= 0 {
			fail = fmt.Sprintf("step %d", rep.EMFailedStep)
		}
		fmt.Printf("%-13s guardband %5.1f%%  final ΔVth %5.1f mV  EM failure: %-9s availability %.3f  recovery overhead %.1f%%\n",
			rep.Policy, rep.GuardbandFrac*100, rep.FinalShiftV*1000, fail,
			rep.Availability, rep.RecoveryOverhead*100)
	}

	worst := deepheal.Margin{FreshDelay: 1, WornDelay: 1 + reports[0].GuardbandFrac}
	deep := deepheal.Margin{FreshDelay: 1, WornDelay: 1 + reports[2].GuardbandFrac}
	fmt.Printf("\nwearout guardband reduction from deep healing: %.1fx\n",
		deepheal.MarginReduction(worst, deep))

	// Active recovery as a design knob: let the library pick the
	// scheduling parameters for this workload (shorter horizon for speed).
	tuneCfg := cfg
	tuneCfg.Steps = 600
	tuned, err := deepheal.TuneDeepHealing(tuneCfg, deepheal.TuneOptions{MinAvailability: 0.99})
	if err != nil {
		return err
	}
	fmt.Printf("auto-tuned schedule: %d-step intervals × %d concurrent → guardband %.1f%% at availability %.3f (%d candidates)\n",
		tuned.Policy.RecoverySteps, tuned.Policy.MaxConcurrent,
		tuned.Report.GuardbandFrac*100, tuned.Report.Availability, tuned.Evaluated)
	return nil
}
