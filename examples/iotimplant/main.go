// IoT implant scenario (the paper's §I motivation): a duty-cycled
// ultra-low-power device that must survive for decades. The device sleeps
// most of the time; the question is what to do with the sleep intervals.
//
// We compare three policies over an accelerated-equivalent mission:
//   - no recovery: the device stays biased while idle,
//   - passive: sleep removes stress (conventional power gating),
//   - deep healing: sleep intervals apply reverse bias, with the periodic
//     sensor-driven deep-recovery intervals the paper proposes.
//
// The supply rail gets the same treatment: periodic reverse-current
// intervals keep the EM nucleation progress bounded, so the rail never
// voids within the mission.
package main

import (
	"fmt"
	"log"

	"deepheal"
)

const (
	wakeMinutes  = 10 // awake and computing
	sleepMinutes = 50 // asleep — the healing opportunity
	missionHours = 1000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("mission: %d h of %d min wake / %d min sleep cycles (accelerated-equivalent)\n\n",
		missionHours, wakeMinutes, sleepMinutes)

	// Transistor aging under the three sleep policies. The implant runs at
	// nominal bias while awake; the sleep condition is the policy knob.
	activeCond := deepheal.BTICondition{GateVoltage: 1.0, Temp: deepheal.Celsius(37)}
	policies := []struct {
		name  string
		sleep deepheal.BTICondition
	}{
		{"no recovery (idle stays biased)", activeCond},
		{"passive sleep (power gated)", deepheal.BTICondition{GateVoltage: 0, Temp: deepheal.Celsius(37)}},
		{"deep healing sleep (-0.3 V, self-heated 60 °C)", deepheal.BTICondition{GateVoltage: -0.3, Temp: deepheal.Celsius(60)}},
	}
	cycles := missionHours * 60 / (wakeMinutes + sleepMinutes)
	for _, p := range policies {
		dev, err := deepheal.NewBTIDevice(deepheal.DefaultBTIParams())
		if err != nil {
			return err
		}
		for c := 0; c < cycles; c++ {
			dev.Apply(activeCond, deepheal.Minutes(wakeMinutes))
			dev.Apply(p.sleep, deepheal.Minutes(sleepMinutes))
		}
		fmt.Printf("%-48s ΔVth = %5.2f mV (permanent %.2f mV)\n",
			p.name, dev.ShiftV()*1000, dev.PermanentV()*1000)
	}

	// Supply-rail electromigration: the implant's regulator can reverse the
	// rail current during sleep (the paper's assist circuitry). Compare the
	// rail's fate with and without the reversal.
	fmt.Println()
	j := deepheal.MAPerCm2(7.96)
	temp := deepheal.Celsius(230) // accelerated test conditions for the rail

	plain, err := deepheal.NewWire(deepheal.DefaultEMParams())
	if err != nil {
		return err
	}
	if ttf, err := plain.TimeToFailure(j, temp, deepheal.Hours(48)); err == nil {
		fmt.Printf("rail without reversal: fails after %.0f min of stress\n", ttf/60)
	}

	healed, err := deepheal.NewWire(deepheal.DefaultEMParams())
	if err != nil {
		return err
	}
	elapsed := 0.0
	for elapsed < deepheal.Hours(48) && !healed.Broken() {
		healed.Run(j, temp, deepheal.Minutes(wakeMinutes*12), 0)
		healed.Run(-j, temp, deepheal.Minutes(sleepMinutes), 0)
		elapsed = healed.Time()
	}
	if healed.Broken() {
		fmt.Printf("rail with sleep reversal: failed at %.0f min\n", elapsed/60)
	} else {
		fmt.Printf("rail with sleep reversal: alive after %.0f min (max stress %.2f of critical) — voids never nucleate\n",
			elapsed/60, healed.MaxStress())
	}
	return nil
}
