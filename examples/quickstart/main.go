// Quickstart: age a transistor population with the paper's accelerated
// stress, then compare the four Table I recovery conditions — passive,
// active (reverse bias), accelerated (high temperature) and deep healing
// (both) — plus the balanced stress/recovery schedule that keeps the
// permanent component at zero.
package main

import (
	"fmt"
	"log"

	"deepheal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev, err := deepheal.NewBTIDevice(deepheal.DefaultBTIParams())
	if err != nil {
		return err
	}

	// 24 hours of accelerated stress (high voltage, 110 °C).
	dev.Apply(deepheal.StressAccel, deepheal.Hours(24))
	fmt.Printf("after 24 h stress: ΔVth = %.1f mV (%.1f mV permanent)\n\n",
		dev.ShiftV()*1000, dev.PermanentV()*1000)

	// How much does each recovery condition heal in 6 hours?
	conditions := []struct {
		name string
		cond deepheal.BTICondition
	}{
		{"passive      (20 °C,  0 V)", deepheal.RecoverPassive},
		{"active       (20 °C, -0.3 V)", deepheal.RecoverActive},
		{"accelerated  (110 °C,  0 V)", deepheal.RecoverAccelerated},
		{"deep healing (110 °C, -0.3 V)", deepheal.RecoverDeep},
	}
	for _, c := range conditions {
		frac := dev.RecoveryFraction(c.cond, deepheal.Hours(6))
		fmt.Printf("6 h %s recovers %5.1f%%\n", c.name, frac*100)
	}

	// The paper's key scheduling result: balanced 1 h stress : 1 h deep
	// recovery keeps even the permanent component at practically zero.
	fresh, err := deepheal.NewBTIDevice(deepheal.DefaultBTIParams())
	if err != nil {
		return err
	}
	residuals := fresh.RunDutyCycles(deepheal.StressAccel, deepheal.RecoverDeep,
		deepheal.Hours(1), deepheal.Hours(1), 10)
	last := residuals[len(residuals)-1]
	fmt.Printf("\n10 cycles of 1 h stress : 1 h deep recovery → residual %.2f mV (locked %.2f mV) — practically fresh\n",
		last.ResidualV*1000, last.LockedV*1000)
	return nil
}
