module deepheal

go 1.22
