// Package deepheal is a from-scratch Go reproduction of
//
//	Xinfei Guo and Mircea R. Stan, "Deep Healing: Ease the BTI and EM
//	Wearout Crisis by Activating Recovery", DSN/SELSE 2017.
//
// It provides physics-based simulators for the two dominant wearout
// mechanisms the paper targets — Bias Temperature Instability (BTI) in
// transistors (a capture–emission-time trap-map model) and electromigration
// (EM) in on-chip wires (the Korhonen stress-evolution PDE) — plus the
// paper's proposed remedies built on top of them: active recovery (reverse
// bias / reverse current), accelerated recovery (elevated temperature), the
// assist circuitry of Fig. 8 simulated with an internal SPICE-like MNA
// engine, and the system-level Deep Healing scheduler that inserts recovery
// intervals across a many-core die.
//
// The package re-exports the stable surface of the internal simulator
// packages so downstream users work with one import:
//
//	dev := deepheal.MustNewBTIDevice(deepheal.DefaultBTIParams())
//	dev.Apply(deepheal.StressAccel, deepheal.Hours(24))
//	healed := dev.RecoveryFraction(deepheal.RecoverDeep, deepheal.Hours(6))
//
// Every table and figure of the paper's evaluation can be regenerated via
// RunExperiment; see EXPERIMENTS.md for the recorded paper-vs-measured
// comparison and cmd/deepheal for the command-line harness.
package deepheal

import (
	"context"
	"time"

	"deepheal/internal/assist"
	"deepheal/internal/bti"
	"deepheal/internal/campaign"
	"deepheal/internal/core"
	"deepheal/internal/em"
	"deepheal/internal/engine"
	"deepheal/internal/experiments"
	"deepheal/internal/lifetime"
	"deepheal/internal/rngx"
	"deepheal/internal/sensor"
	"deepheal/internal/units"
	"deepheal/internal/workload"
)

// BTI wearout modelling (the paper's §III-C experiments).
type (
	// BTIParams holds the calibrated BTI model parameters.
	BTIParams = bti.Params
	// BTIDevice is one BTI-aging transistor population.
	BTIDevice = bti.Device
	// BTICondition is an electrical/thermal stress or recovery condition.
	BTICondition = bti.Condition
	// BTIPhase is one constant-condition segment of a schedule.
	BTIPhase = bti.Phase
	// BTISchedule is an ordered sequence of phases.
	BTISchedule = bti.Schedule
	// CycleResidual is the post-recovery state of one duty cycle (Fig. 4).
	CycleResidual = bti.CycleResidual
)

// The paper's stress and Table I recovery conditions.
var (
	// StressAccel is the accelerated stress (high voltage and temperature).
	StressAccel = bti.StressAccel
	// RecoverPassive is Table I No. 1 (20 °C, 0 V).
	RecoverPassive = bti.RecoverPassive
	// RecoverActive is Table I No. 2 (20 °C, −0.3 V).
	RecoverActive = bti.RecoverActive
	// RecoverAccelerated is Table I No. 3 (110 °C, 0 V).
	RecoverAccelerated = bti.RecoverAccelerated
	// RecoverDeep is Table I No. 4 (110 °C, −0.3 V) — deep healing.
	RecoverDeep = bti.RecoverDeep
)

// DefaultBTIParams returns the parameter set calibrated against the paper's
// Table I model column.
func DefaultBTIParams() BTIParams { return bti.DefaultParams() }

// NewBTIDevice builds a fresh BTI device.
func NewBTIDevice(p BTIParams) (*BTIDevice, error) { return bti.NewDevice(p) }

// MustNewBTIDevice is NewBTIDevice for known-good parameters.
func MustNewBTIDevice(p BTIParams) *BTIDevice { return bti.MustNewDevice(p) }

// Population studies (device-to-device variability).
type (
	// BTIPopulation is a set of parameter-variable BTI devices.
	BTIPopulation = bti.Population
	// BTIVariation describes the parameter spread of a population.
	BTIVariation = bti.Variation
	// BTIStats summarises a population's threshold shifts.
	BTIStats = bti.Stats
)

// DefaultBTIVariation models a moderately variable 40 nm-class population.
func DefaultBTIVariation() BTIVariation { return bti.DefaultVariation() }

// NewBTIPopulation draws n devices around nominal parameters.
func NewBTIPopulation(nominal BTIParams, v BTIVariation, n int, rng *RNG) (*BTIPopulation, error) {
	return bti.NewPopulation(nominal, v, n, rng)
}

// EM wearout modelling (the paper's §III-D experiments).
type (
	// EMParams describes a metal test wire and the Korhonen model constants.
	EMParams = em.Params
	// Wire is one EM-stressed metal line (full PDE model).
	Wire = em.Wire
	// WireEnd identifies a wire extremity.
	WireEnd = em.End
	// EMSample is one resistance-trace point.
	EMSample = em.Sample
	// EMSchedule is a sequence of current/temperature phases.
	EMSchedule = em.Schedule
	// EMReducedParams configures the per-segment reduced-order EM model.
	EMReducedParams = em.ReducedParams
	// EMSegment is the reduced-order EM state used in system simulations.
	EMSegment = em.Reduced
)

// Wire ends.
const (
	EndCathode = em.EndCathode
	EndAnode   = em.EndAnode
)

// DefaultEMParams returns the model of the paper's 0.18 µm copper test wire.
func DefaultEMParams() EMParams { return em.DefaultParams() }

// NewWire builds a fresh test wire.
func NewWire(p EMParams) (*Wire, error) { return em.NewWire(p) }

// MustNewWire is NewWire for known-good parameters.
func MustNewWire(p EMParams) *Wire { return em.MustNewWire(p) }

// DefaultEMReducedParams returns reduced-order parameters matched to the
// full wire model.
func DefaultEMReducedParams() EMReducedParams { return em.DefaultReducedParams() }

// NewEMSegment builds a reduced-order EM segment.
func NewEMSegment(p EMReducedParams) (*EMSegment, error) { return em.NewReduced(p) }

// Assist circuitry (the paper's §IV-A, Figs. 8–10).
type (
	// AssistConfig sizes the assist circuitry and its load.
	AssistConfig = assist.Config
	// Assist is one instantiated assist-circuitry block.
	Assist = assist.Assist
	// AssistMode selects Normal / EM recovery / BTI recovery operation.
	AssistMode = assist.Mode
	// OperatingPoint is a DC solution of the assist circuitry.
	OperatingPoint = assist.OperatingPoint
	// SizingPoint is one row of the Fig. 10 load-size sweep.
	SizingPoint = assist.SizingPoint
)

// Assist circuitry operating modes.
const (
	ModeNormal      = assist.ModeNormal
	ModeEMRecovery  = assist.ModeEMRecovery
	ModeBTIRecovery = assist.ModeBTIRecovery
)

// DefaultAssistConfig returns the 28 nm-class sizing used for Fig. 9/10.
func DefaultAssistConfig() AssistConfig { return assist.DefaultConfig() }

// NewAssist builds the assist circuitry netlist in Normal mode.
func NewAssist(cfg AssistConfig) (*Assist, error) { return assist.New(cfg) }

// AssistLoadSweep reproduces Fig. 10's load-size trade-off.
func AssistLoadSweep(cfg AssistConfig, maxLoads int) ([]SizingPoint, error) {
	return assist.LoadSizeSweep(cfg, maxLoads)
}

// System-level Deep Healing scheduling (the paper's §IV-B, Fig. 12).
type (
	// SystemConfig describes the simulated many-core system.
	SystemConfig = core.Config
	// Simulator runs one scheduling policy over a system lifetime.
	Simulator = core.Simulator
	// Policy plans per-step core modes and EM-recovery intervals.
	Policy = core.Policy
	// DeepHealingPolicy is the paper's proposed scheduler.
	DeepHealingPolicy = core.DeepHealing
	// NoRecoveryPolicy is the worst-case baseline.
	NoRecoveryPolicy = core.NoRecovery
	// PassiveRecoveryPolicy is the power-gating baseline.
	PassiveRecoveryPolicy = core.PassiveRecovery
	// SystemReport summarises one policy run.
	SystemReport = core.Report
	// StatefulPolicy is a Policy whose planning state survives checkpoints.
	StatefulPolicy = core.StatefulPolicy
	// SimOption tunes how a Simulator executes (workers, hooks).
	SimOption = core.Option
	// StageName identifies one stage of the engine pipeline.
	StageName = engine.StageName
	// WorkloadProfile produces per-step utilisation.
	WorkloadProfile = workload.Profile
)

// DefaultSystemConfig returns the 16-core reference system.
func DefaultSystemConfig() SystemConfig { return core.DefaultConfig() }

// SystemConfigForGrid returns the reference system rescaled to a rows×cols
// die.
func SystemConfigForGrid(rows, cols int) SystemConfig { return core.ConfigForGrid(rows, cols) }

// DefaultDeepHealing returns the tuned Deep Healing scheduler.
func DefaultDeepHealing() *DeepHealingPolicy { return core.DefaultDeepHealing() }

// NewSimulator builds a system simulator for one policy run. Options bound
// the wearout-stage worker pool (WithWorkers) and install observability
// hooks (WithProgress, WithStageTime); results are bit-identical for every
// worker count.
func NewSimulator(cfg SystemConfig, p Policy, opts ...SimOption) (*Simulator, error) {
	return core.NewSimulator(cfg, p, opts...)
}

// WithWorkers bounds the simulator's wearout-stage worker pool
// (0 = GOMAXPROCS, 1 = serial).
func WithWorkers(n int) SimOption { return core.WithWorkers(n) }

// WithProgress installs a per-step progress callback.
func WithProgress(fn func(step, total int)) SimOption { return core.WithProgress(fn) }

// WithStageTime installs a per-pipeline-stage wall-time callback.
func WithStageTime(fn func(stage StageName, d time.Duration)) SimOption {
	return core.WithStageTime(fn)
}

// RunPolicies runs one independent simulation per policy concurrently.
func RunPolicies(cfg SystemConfig, policies ...Policy) ([]*SystemReport, error) {
	return core.RunPolicies(cfg, policies...)
}

// RunPoliciesContext is RunPolicies with cancellation and an explicit worker
// bound (0 = GOMAXPROCS).
func RunPoliciesContext(ctx context.Context, cfg SystemConfig, workers int, policies ...Policy) ([]*SystemReport, error) {
	return core.RunPoliciesContext(ctx, cfg, workers, policies...)
}

// Scheduler auto-tuning.
type (
	// TuneOptions bounds the deep-healing knob search.
	TuneOptions = core.TuneOptions
	// TuneResult is the best configuration found and its evaluation.
	TuneResult = core.TuneResult
)

// TuneDeepHealing grid-searches the deep-healing scheduling knobs for the
// smallest guardband that meets the availability floor.
func TuneDeepHealing(cfg SystemConfig, opts TuneOptions) (*TuneResult, error) {
	return core.Tune(cfg, opts)
}

// TuneDeepHealingContext is TuneDeepHealing with cancellation.
func TuneDeepHealingContext(ctx context.Context, cfg SystemConfig, opts TuneOptions) (*TuneResult, error) {
	return core.TuneContext(ctx, cfg, opts)
}

// Reliability mathematics.
type (
	// Margin quantifies a wearout guardband.
	Margin = lifetime.Margin
	// BlackParams parameterises Black's equation.
	BlackParams = lifetime.BlackParams
)

// MarginReduction compares a baseline guardband against an improved one.
func MarginReduction(baseline, improved Margin) float64 {
	return lifetime.Reduction(baseline, improved)
}

// DefaultBlackParams returns Black's-equation constants calibrated to the
// Korhonen model at the paper's accelerated conditions.
func DefaultBlackParams() BlackParams { return lifetime.DefaultBlackParams() }

// Units and conditions.
type (
	// Temperature is an absolute temperature.
	Temperature = units.Temperature
	// CurrentDensity is a signed current density.
	CurrentDensity = units.CurrentDensity
)

// Celsius converts degrees Celsius to a Temperature.
func Celsius(c float64) Temperature { return units.Celsius(c) }

// MAPerCm2 converts MA/cm² (the paper's unit) to a CurrentDensity.
func MAPerCm2(v float64) CurrentDensity { return units.MAPerCm2(v) }

// Hours converts hours to seconds, the time unit of the simulators.
func Hours(h float64) float64 { return units.Hours(h) }

// Minutes converts minutes to seconds.
func Minutes(m float64) float64 { return units.Minutes(m) }

// Experiments: regenerate every table and figure of the paper.
type (
	// ExperimentResult is a completed experiment with a paper-style
	// formatter.
	ExperimentResult = experiments.Result
	// ExperimentEntry is one registered experiment: its id and campaign
	// plan.
	ExperimentEntry = experiments.Entry
)

// RunExperiment executes one of the registered paper experiments
// ("table1", "fig4", ..., "fig12", "ablation-...") serially under ctx.
func RunExperiment(ctx context.Context, id string) (ExperimentResult, error) {
	return experiments.Run(ctx, id)
}

// ExperimentIDs lists the registered experiment identifiers in
// presentation order.
func ExperimentIDs() []string { return experiments.IDs() }

// Experiments returns the experiment registry in presentation order.
func Experiments() []ExperimentEntry { return experiments.Registry() }

// Campaign execution: run many experiments on one bounded worker pool with
// cross-experiment memoisation and point-granular checkpoint/resume.
type (
	// CampaignTask is one experiment's declared point set.
	CampaignTask = campaign.Task
	// CampaignOptions tunes a campaign run (workers, journal, delivery).
	CampaignOptions = campaign.Options
	// CampaignOutcome is one task's completed execution with per-point
	// statistics.
	CampaignOutcome = campaign.Outcome
	// CampaignJournal persists completed points for checkpoint/resume.
	CampaignJournal = campaign.Journal
)

// OpenCampaignJournal opens (creating if needed) a campaign journal
// directory for checkpoint/resume at point granularity.
func OpenCampaignJournal(dir string) (*CampaignJournal, error) {
	return campaign.OpenJournal(dir)
}

// RunCampaign executes the given experiments (all of them when ids is
// empty) on one bounded worker pool. Outcomes are returned — and delivered
// to opts.OnTask — in registry order, byte-identical to a serial run.
func RunCampaign(ctx context.Context, ids []string, opts CampaignOptions) ([]CampaignOutcome, error) {
	tasks, err := experiments.Plans(ids...)
	if err != nil {
		return nil, err
	}
	return campaign.Run(ctx, tasks, opts)
}

// Sensors and workloads used by the system simulations.
type (
	// ROSensorConfig describes a ring-oscillator BTI sensor.
	ROSensorConfig = sensor.ROConfig
	// RNG is a deterministic random stream.
	RNG = rngx.Source
)

// NewRNG creates a deterministic random source for reproducible runs.
func NewRNG(seed int64) *RNG { return rngx.New(seed) }

// ConstantWorkload returns a fixed-utilisation profile.
func ConstantWorkload(util float64) WorkloadProfile { return workload.Constant{Util: util} }

// PeriodicWorkload returns a busy/idle alternating profile.
func PeriodicWorkload(busySteps, idleSteps int, busyUtil float64) WorkloadProfile {
	return workload.Periodic{BusySteps: busySteps, IdleSteps: idleSteps, BusyUtil: busyUtil}
}

// IoTWorkload returns a duty-cycled wake/sleep profile (the paper's ULP
// motivation).
func IoTWorkload(wakeEvery, active int, util float64) WorkloadProfile {
	return workload.IoTDutyCycle{WakeEvery: wakeEvery, Active: active, Util: util}
}

// TraceWorkload replays a recorded (stepTime, utilisation) trace with
// linear interpolation, optionally looping.
func TraceWorkload(label string, times, utils []float64, loop bool) (WorkloadProfile, error) {
	return workload.NewTraceProfile(label, times, utils, loop)
}
