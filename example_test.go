package deepheal_test

import (
	"context"
	"fmt"

	"deepheal"
)

// ExampleBTIDevice reproduces the paper's Table I protocol: the four
// recovery conditions applied to the same 24-hour accelerated stress.
func ExampleBTIDevice() {
	dev := deepheal.MustNewBTIDevice(deepheal.DefaultBTIParams())
	dev.Apply(deepheal.StressAccel, deepheal.Hours(24))

	for _, c := range []struct {
		name string
		cond deepheal.BTICondition
	}{
		{"passive", deepheal.RecoverPassive},
		{"active", deepheal.RecoverActive},
		{"accelerated", deepheal.RecoverAccelerated},
		{"deep", deepheal.RecoverDeep},
	} {
		frac := dev.RecoveryFraction(c.cond, deepheal.Hours(6))
		fmt.Printf("%s: %.1f%%\n", c.name, frac*100)
	}
	// Output:
	// passive: 1.0%
	// active: 14.4%
	// accelerated: 29.2%
	// deep: 72.7%
}

// ExampleWire shows the Blech immortality check and the accelerated
// time-to-failure of the paper's copper test wire.
func ExampleWire() {
	params := deepheal.DefaultEMParams()
	fmt.Printf("Blech limit: %.1f MA/cm²\n", params.ImmortalityCurrentDensity().MAcm2())
	fmt.Printf("3 MA/cm² immortal: %v\n", params.Immortal(deepheal.MAPerCm2(3)))

	w := deepheal.MustNewWire(params)
	ttf, err := w.TimeToFailure(deepheal.MAPerCm2(7.96), deepheal.Celsius(230), deepheal.Hours(48))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("TTF at paper stress: %.0f min\n", ttf/60)
	// Output:
	// Blech limit: 6.4 MA/cm²
	// 3 MA/cm² immortal: true
	// TTF at paper stress: 1056 min
}

// ExampleRunExperiment regenerates a paper artefact through the experiment
// registry.
func ExampleRunExperiment() {
	res, err := deepheal.RunExperiment(context.Background(), "table1")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.ID())
	// Output:
	// table1
}
